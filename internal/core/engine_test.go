package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"bohm/internal/txn"
)

// setTxn writes a deterministic, order-sensitive value: v' = v*31 + tag.
// Folding these is non-commutative, so the final value pins down the
// exact serialization order.
func setTxn(id uint64, tag uint64) txn.Txn {
	k := key(id)
	return &txn.Proc{
		Reads:  []txn.Key{k},
		Writes: []txn.Key{k},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(k)
			if err != nil {
				return err
			}
			return ctx.Write(k, txn.NewValue(8, txn.U64(v)*31+tag))
		},
	}
}

// TestSerializationOrderIsSubmissionOrder is BOHM's headline contract:
// the equivalent serial order is exactly the submission order, checked
// with a non-commutative fold over a hot key.
func TestSerializationOrderIsSubmissionOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCWorkers = 3
	cfg.ExecWorkers = 4
	cfg.BatchSize = 16
	e := newTestEngine(t, cfg, 1)

	const n = 500
	ts := make([]txn.Txn, n)
	want := uint64(0)
	for i := range ts {
		tag := uint64(i + 1)
		ts[i] = setTxn(0, tag)
		want = want*31 + tag
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if got := readCounter(t, e, 0); got != want {
		t.Fatalf("fold = %d, want %d (serialization order differs from submission order)", got, want)
	}
}

// TestSerializationOrderAcrossSubmissions extends the order check across
// multiple concurrent ExecuteBatch calls from one goroutine at a time
// (sequential calls must serialize in call order).
func TestSerializationOrderAcrossSubmissions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 8
	e := newTestEngine(t, cfg, 1)
	want := uint64(0)
	tag := uint64(1)
	for round := 0; round < 30; round++ {
		ts := make([]txn.Txn, 7)
		for i := range ts {
			ts[i] = setTxn(0, tag)
			want = want*31 + tag
			tag++
		}
		for i, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
		}
	}
	if got := readCounter(t, e, 0); got != want {
		t.Fatalf("fold = %d, want %d", got, want)
	}
}

// TestDeclaredButUnwrittenKeyCopiesForward: a transaction that declares a
// write it never performs must leave the record's value intact for later
// readers (§3.3.1's copy-forward of placeholders).
func TestDeclaredButUnwrittenKeyCopiesForward(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 2)
	if res := e.ExecuteBatch([]txn.Txn{incTxn(0)}); res[0] != nil {
		t.Fatal(res[0])
	}
	conditional := &txn.Proc{
		Reads:  []txn.Key{key(0), key(1)},
		Writes: []txn.Key{key(0), key(1)}, // declares both, writes only key 1
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(1))
			if err != nil {
				return err
			}
			return ctx.Write(key(1), txn.Incremented(v, 10))
		},
	}
	res := e.ExecuteBatch([]txn.Txn{conditional, incTxn(0), incTxn(1)})
	for i, err := range res {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if got := readCounter(t, e, 0); got != 2 {
		t.Errorf("key 0 = %d, want 2 (copy-forward must preserve the old value)", got)
	}
	if got := readCounter(t, e, 1); got != 11 {
		t.Errorf("key 1 = %d, want 11", got)
	}
}

// TestReadOwnWrite: within a transaction, a read after a write observes
// the buffered write; the pre-state is observed before the write.
func TestReadOwnWrite(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 1)
	if res := e.ExecuteBatch([]txn.Txn{incTxn(0)}); res[0] != nil {
		t.Fatal(res[0])
	}
	var before, after uint64
	p := &txn.Proc{
		Reads:  []txn.Key{key(0)},
		Writes: []txn.Key{key(0)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(0))
			if err != nil {
				return err
			}
			before = txn.U64(v)
			if err := ctx.Write(key(0), txn.NewValue(8, 77)); err != nil {
				return err
			}
			v, err = ctx.Read(key(0))
			if err != nil {
				return err
			}
			after = txn.U64(v)
			return nil
		},
	}
	if res := e.ExecuteBatch([]txn.Txn{p}); res[0] != nil {
		t.Fatal(res[0])
	}
	if before != 1 || after != 77 {
		t.Fatalf("before=%d after=%d, want 1 and 77", before, after)
	}
}

// TestDeleteInsertChain: delete then re-insert the same key across
// batches; intermediate readers see the tombstone.
func TestDeleteInsertChain(t *testing.T) {
	// The probe's position between the same call's delete and reinsert is
	// the property under test; the fast path would serialize it at the
	// watermark, before both.
	cfg := DefaultConfig()
	cfg.DisableReadOnlyFastPath = true
	e := newTestEngine(t, cfg, 1)
	k := key(0)
	del := &txn.Proc{Writes: []txn.Key{k}, Body: func(ctx txn.Ctx) error { return ctx.Delete(k) }}
	var sawDeleted error
	probe := &txn.Proc{Reads: []txn.Key{k}, Body: func(ctx txn.Ctx) error {
		_, sawDeleted = ctx.Read(k)
		return nil
	}}
	reinsert := &txn.Proc{Writes: []txn.Key{k}, Body: func(ctx txn.Ctx) error {
		return ctx.Write(k, txn.NewValue(8, 5))
	}}
	res := e.ExecuteBatch([]txn.Txn{del, probe, reinsert})
	for i, err := range res {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if !errors.Is(sawDeleted, txn.ErrNotFound) {
		t.Errorf("probe between delete and reinsert read %v, want ErrNotFound", sawDeleted)
	}
	if got := readCounter(t, e, 0); got != 5 {
		t.Errorf("after reinsert = %d, want 5", got)
	}
}

// TestAbortedInsertInvisible: an insert whose logic aborts must leave the
// record nonexistent (tombstone copy-forward for placeholders without a
// predecessor).
func TestAbortedInsertInvisible(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 1)
	k := key(99)
	boom := errors.New("boom")
	ins := &txn.Proc{Writes: []txn.Key{k}, Body: func(ctx txn.Ctx) error {
		if err := ctx.Write(k, txn.NewValue(8, 1)); err != nil {
			return err
		}
		return boom
	}}
	res := e.ExecuteBatch([]txn.Txn{ins})
	if !errors.Is(res[0], boom) {
		t.Fatalf("insert abort = %v", res[0])
	}
	if _, err := readVal(t, e, 99); !errors.Is(err, txn.ErrNotFound) {
		t.Errorf("aborted insert visible: %v", err)
	}
}

func readVal(t *testing.T, e *Engine, id uint64) (uint64, error) {
	t.Helper()
	var got uint64
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Reads: []txn.Key{key(id)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(id))
			if err != nil {
				return err
			}
			got = txn.U64(v)
			return nil
		},
	}})
	return got, res[0]
}

// TestDisableReadRefs runs the same workload with the read-reference
// optimization off; results must match (only the read path differs).
func TestDisableReadRefs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableReadRefs = true
	cfg.BatchSize = 32
	e := newTestEngine(t, cfg, 8)
	const n = 300
	ts := make([]txn.Txn, n)
	for i := range ts {
		ts[i] = incTxn(uint64(i%8), uint64((i+3)%8))
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	var sum uint64
	for i := uint64(0); i < 8; i++ {
		sum += readCounter(t, e, i)
	}
	if sum != 2*n {
		t.Fatalf("sum = %d, want %d", sum, 2*n)
	}
	if s := e.Stats(); s.ReadRefHits != 0 {
		t.Errorf("readRefHits = %d with annotation disabled", s.ReadRefHits)
	} else if s.ChainSteps == 0 {
		t.Error("expected chain traversal steps with annotation disabled")
	}
}

// TestReadRefsUsed confirms the annotation path actually serves reads in
// the default configuration.
func TestReadRefsUsed(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 4)
	ts := make([]txn.Txn, 50)
	for i := range ts {
		ts[i] = incTxn(uint64(i % 4))
	}
	e.ExecuteBatch(ts)
	if s := e.Stats(); s.ReadRefHits == 0 {
		t.Error("readRefHits = 0; annotation not in use")
	}
}

// TestBatchSizeOne degenerates to a per-transaction barrier; correctness
// must be unaffected.
func TestBatchSizeOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 1
	e := newTestEngine(t, cfg, 2)
	ts := make([]txn.Txn, 60)
	want := uint64(0)
	for i := range ts {
		tag := uint64(i + 1)
		ts[i] = setTxn(0, tag)
		want = want*31 + tag
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if got := readCounter(t, e, 0); got != want {
		t.Fatalf("fold = %d, want %d", got, want)
	}
}

// TestGarbageCollectionBoundsChains: with GC on, a hammered key's chain
// must stay bounded instead of growing with the update count.
func TestGarbageCollectionBoundsChains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 16
	cfg.GC = true
	e := newTestEngine(t, cfg, 1)
	for round := 0; round < 40; round++ {
		ts := make([]txn.Txn, 25)
		for i := range ts {
			ts[i] = incTxn(0)
		}
		for _, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	s := e.Stats()
	if s.VersionsCollected == 0 {
		t.Fatal("GC collected nothing")
	}
	chain := e.chainFor(key(0))
	if chain == nil {
		t.Fatal("chain missing")
	}
	if l := chain.Len(); l > 200 {
		t.Errorf("chain length %d after 1000 updates; GC not bounding growth", l)
	}
}

// TestGCDisabledKeepsVersions: with GC off, all versions survive.
func TestGCDisabledKeepsVersions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GC = false
	e := newTestEngine(t, cfg, 1)
	const n = 200
	ts := make([]txn.Txn, n)
	for i := range ts {
		ts[i] = incTxn(0)
	}
	for _, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.VersionsCollected != 0 {
		t.Fatalf("collected %d versions with GC off", s.VersionsCollected)
	}
	if l := e.chainFor(key(0)).Len(); l != n+1 {
		t.Errorf("chain length = %d, want %d", l, n+1)
	}
}

// TestConcurrentSubmitters drives the engine from several goroutines;
// per-key sums must add up.
func TestConcurrentSubmitters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 32
	e := newTestEngine(t, cfg, 16)
	var wg sync.WaitGroup
	const subs = 4
	const perSub = 50
	for s := 0; s < subs; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < perSub; r++ {
				ts := []txn.Txn{incTxn(uint64(rng.Intn(16))), incTxn(uint64(rng.Intn(16)))}
				for _, err := range e.ExecuteBatch(ts) {
					if err != nil {
						t.Errorf("txn failed: %v", err)
						return
					}
				}
			}
		}(int64(s))
	}
	wg.Wait()
	var sum uint64
	for i := uint64(0); i < 16; i++ {
		sum += readCounter(t, e, i)
	}
	if want := uint64(subs * perSub * 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// TestCloseRejectsNewWork: ExecuteBatch after Close errors out rather
// than hanging.
func TestCloseRejectsNewWork(t *testing.T) {
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(key(0), txn.NewValue(8, 0)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	res := e.ExecuteBatch([]txn.Txn{incTxn(0)})
	if !errors.Is(res[0], ErrClosed) {
		t.Fatalf("after close = %v, want ErrClosed", res[0])
	}
	e.Close() // double close must be safe
}

// TestEmptyBatch returns immediately.
func TestEmptyBatch(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 1)
	if res := e.ExecuteBatch(nil); len(res) != 0 {
		t.Fatal("nil batch returned results")
	}
}

// TestConfigValidation rejects zero workers.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{CCWorkers: 0, ExecWorkers: 1}); err == nil {
		t.Error("accepted zero CC workers")
	}
	if _, err := New(Config{CCWorkers: 1, ExecWorkers: 0}); err == nil {
		t.Error("accepted zero exec workers")
	}
}

// TestDuplicateLoadRejected surfaces double loads.
func TestDuplicateLoadRejected(t *testing.T) {
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	if err := e.Load(key(0), txn.NewValue(8, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(key(0), txn.NewValue(8, 0)); err == nil {
		t.Error("duplicate load accepted")
	}
}

// TestPartitionBalance sanity-checks the partitioning function over a
// dense keyspace.
func TestPartitionBalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCWorkers = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	keys := make([]txn.Key, 40000)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	for w := 0; w < 4; w++ {
		n := e.ownedKeys(keys, w)
		if n < 8000 || n > 12000 {
			t.Errorf("partition %d owns %d of 40000 keys", w, n)
		}
	}
}

// TestWritesBlockReads: BOHM lets writes block reads (never the
// converse). A reader after a slow writer must observe the written value,
// demonstrating the dependency wait rather than returning stale data.
func TestWritesBlockReads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExecWorkers = 2
	cfg.BatchSize = 4
	// The dependency wait inside one call is the property under test; the
	// fast path would serialize the reader before the same-call write.
	cfg.DisableReadOnlyFastPath = true
	e := newTestEngine(t, cfg, 1)

	slowWrite := &txn.Proc{
		Reads:  []txn.Key{key(0)},
		Writes: []txn.Key{key(0)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(0))
			if err != nil {
				return err
			}
			// Burn some cycles so the dependent read queues up behind us.
			x := txn.U64(v)
			for i := 0; i < 10000; i++ {
				x = x*31 + 1
			}
			_ = x
			return ctx.Write(key(0), txn.Incremented(v, 1))
		},
	}
	var observed uint64
	reader := &txn.Proc{
		Reads: []txn.Key{key(0)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(0))
			if err != nil {
				return err
			}
			observed = txn.U64(v)
			return nil
		},
	}
	res := e.ExecuteBatch([]txn.Txn{slowWrite, reader})
	if res[0] != nil || res[1] != nil {
		t.Fatalf("results: %v", res)
	}
	if observed != 1 {
		t.Fatalf("reader observed %d, want 1 (must wait for the write)", observed)
	}
}

// TestRandomizedStress runs a random mix with occasional aborts across
// random configurations; sums must reconcile with committed increments.
func TestRandomizedStress(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	boom := errors.New("boom")
	for trial := 0; trial < 6; trial++ {
		cfg := DefaultConfig()
		cfg.CCWorkers = 1 + rng.Intn(3)
		cfg.ExecWorkers = 1 + rng.Intn(4)
		cfg.BatchSize = 1 << uint(rng.Intn(7))
		cfg.GC = rng.Intn(2) == 0
		cfg.DisableReadRefs = rng.Intn(2) == 0
		const nkeys = 10
		e := newTestEngine(t, cfg, nkeys)

		const n = 400
		ts := make([]txn.Txn, n)
		incs := make([][]uint64, n)
		aborts := make([]bool, n)
		for i := range ts {
			cnt := 1 + rng.Intn(3)
			ids := make([]uint64, 0, cnt)
			for len(ids) < cnt {
				id := uint64(rng.Intn(nkeys))
				dup := false
				for _, x := range ids {
					if x == id {
						dup = true
					}
				}
				if !dup {
					ids = append(ids, id)
				}
			}
			incs[i] = ids
			abort := rng.Intn(10) == 0
			aborts[i] = abort
			ks := make([]txn.Key, len(ids))
			for j, id := range ids {
				ks[j] = key(id)
			}
			ts[i] = &txn.Proc{
				Reads:  ks,
				Writes: ks,
				Body: func(ctx txn.Ctx) error {
					for _, k := range ks {
						v, err := ctx.Read(k)
						if err != nil {
							return err
						}
						if err := ctx.Write(k, txn.Incremented(v, 1)); err != nil {
							return err
						}
					}
					if abort {
						return boom
					}
					return nil
				},
			}
		}
		res := e.ExecuteBatch(ts)
		want := map[uint64]uint64{}
		for i, err := range res {
			if aborts[i] {
				if !errors.Is(err, boom) {
					t.Fatalf("trial %d txn %d: expected abort, got %v", trial, i, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d txn %d: %v", trial, i, err)
			}
			for _, id := range incs[i] {
				want[id]++
			}
		}
		for id := uint64(0); id < nkeys; id++ {
			if got := readCounter(t, e, id); got != want[id] {
				t.Fatalf("trial %d (cfg %+v): key %d = %d, want %d", trial, cfg, id, got, want[id])
			}
		}
	}
}
