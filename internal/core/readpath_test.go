package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bohm/internal/txn"
	"bohm/internal/wal"
)

// Tests for the read-only fast path: serializable snapshot reads that
// bypass the sequencer → CC → execution pipeline. The stress test is the
// load-bearing one — run under -race it checks that snapshot readers never
// observe a GC-cut or pool-recycled version while chains churn underneath
// them.

// roSum builds a read-only transaction summing the counters of ks through
// point reads, recording the observed sum and row count.
func roSum(ks []txn.Key, sum *uint64, rows *int) txn.Txn {
	return &txn.Proc{
		Reads: ks,
		Body: func(c txn.Ctx) error {
			var s uint64
			n := 0
			for _, k := range ks {
				v, err := c.Read(k)
				if errors.Is(err, txn.ErrNotFound) {
					continue
				}
				if err != nil {
					return err
				}
				s += txn.U64(v)
				n++
			}
			*sum, *rows = s, n
			return nil
		},
	}
}

// roScan builds a read-only transaction scanning r, recording sum and rows.
func roScan(r txn.KeyRange, sum *uint64, rows *int) txn.Txn {
	return &txn.Proc{
		Ranges: []txn.KeyRange{r},
		Body: func(c txn.Ctx) error {
			var s uint64
			n := 0
			err := c.ReadRange(r, func(_ txn.Key, v []byte) error {
				s += txn.U64(v)
				n++
				return nil
			})
			*sum, *rows = s, n
			return err
		},
	}
}

// TestFastPathServesReadOnly: read-only transactions take the fast path
// (counted by Stats.ReadOnlyFastPath), observe acknowledged writes, and
// commit like any other transaction.
func TestFastPathServesReadOnly(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 4)
	for i := 0; i < 3; i++ {
		for _, err := range e.ExecuteBatch([]txn.Txn{incTxn(0), incTxn(1)}) {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	var sum uint64
	var rows int
	res := e.ExecuteBatch([]txn.Txn{roSum([]txn.Key{key(0), key(1), key(2)}, &sum, &rows)})
	if res[0] != nil {
		t.Fatal(res[0])
	}
	if sum != 6 || rows != 3 {
		t.Fatalf("fast-path sum = %d over %d rows, want 6 over 3", sum, rows)
	}
	var ssum uint64
	var srows int
	res = e.ExecuteReadOnly([]txn.Txn{roScan(txn.KeyRange{Table: 0, Lo: 0, Hi: 10}, &ssum, &srows)})
	if res[0] != nil {
		t.Fatal(res[0])
	}
	if ssum != 6 || srows != 4 {
		t.Fatalf("fast-path scan = %d over %d rows, want 6 over 4", ssum, srows)
	}
	s := e.Stats()
	if s.ReadOnlyFastPath != 2 {
		t.Errorf("ReadOnlyFastPath = %d, want 2", s.ReadOnlyFastPath)
	}
	if s.Committed < 8 {
		t.Errorf("Committed = %d, want >= 8 (fast-path commits counted)", s.Committed)
	}
}

// TestFastPathRecency: a fast-path read submitted after ExecuteBatch
// acknowledged a write must observe it — the recency gate holds the
// snapshot at or above every previously acknowledged batch. Exercised
// under churn (small batches, GC) through both ExecuteBatch and the
// inline Read API.
func TestFastPathRecency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 4
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 2
	e := newTestEngine(t, cfg, 1)
	var buf []byte
	for i := uint64(1); i <= 300; i++ {
		if res := e.ExecuteBatch([]txn.Txn{incTxn(0)}); res[0] != nil {
			t.Fatal(res[0])
		}
		var sum uint64
		var rows int
		if res := e.ExecuteBatch([]txn.Txn{roSum([]txn.Key{key(0)}, &sum, &rows)}); res[0] != nil {
			t.Fatal(res[0])
		}
		if sum != i {
			t.Fatalf("round %d: fast-path read observed %d, want %d (missed an acknowledged write)", i, sum, i)
		}
		v, err := e.Read(key(0), buf)
		if err != nil {
			t.Fatal(err)
		}
		if got := txn.U64(v); got != i {
			t.Fatalf("round %d: inline Read observed %d, want %d", i, got, i)
		}
		buf = v[:0]
	}
}

// TestReadAPI covers the inline point-read convenience: hits, misses,
// tombstones, buffer reuse, and the pipeline fallback under the ablation.
func TestReadAPI(t *testing.T) {
	for _, disable := range []bool{false, true} {
		t.Run(fmt.Sprintf("disableFastPath=%v", disable), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.DisableReadOnlyFastPath = disable
			e := newTestEngine(t, cfg, 2)
			if res := e.ExecuteBatch([]txn.Txn{incTxn(0)}); res[0] != nil {
				t.Fatal(res[0])
			}
			buf := make([]byte, 0, 64)
			v, err := e.Read(key(0), buf)
			if err != nil {
				t.Fatal(err)
			}
			if txn.U64(v) != 1 {
				t.Fatalf("Read = %d, want 1", txn.U64(v))
			}
			if _, err := e.Read(key(99), nil); !errors.Is(err, txn.ErrNotFound) {
				t.Fatalf("missing key: %v, want ErrNotFound", err)
			}
			del := &txn.Proc{Writes: []txn.Key{key(1)}, Body: func(c txn.Ctx) error { return c.Delete(key(1)) }}
			if res := e.ExecuteBatch([]txn.Txn{del}); res[0] != nil {
				t.Fatal(res[0])
			}
			if _, err := e.Read(key(1), nil); !errors.Is(err, txn.ErrNotFound) {
				t.Fatalf("deleted key: %v, want ErrNotFound", err)
			}
		})
	}
}

// TestReadAPIDurableAblation: the inline Read works on a durable engine
// even under DisableReadOnlyFastPath — it serves from the snapshot
// directly and never needs a Loggable wrapper.
func TestReadAPIDurableAblation(t *testing.T) {
	reg := durRegistry()
	cfg := durableConfig(t.TempDir())
	cfg.DisableReadOnlyFastPath = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if res := e.ExecuteBatch([]txn.Txn{mutCall(t, reg, 5, 7, opIncrement)}); res[0] != nil {
		t.Fatal(res[0])
	}
	v, err := e.Read(key(5), nil)
	if err != nil {
		t.Fatalf("Read on durable ablation engine: %v", err)
	}
	if got := txn.U64(v); got != 7 {
		t.Fatalf("Read = %d, want 7", got)
	}
}

// TestExecuteReadOnlyRejectsWriters: transactions declaring writes are
// refused with ErrNotReadOnly; the rest of the submission proceeds.
func TestExecuteReadOnlyRejectsWriters(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 2)
	var sum uint64
	var rows int
	res := e.ExecuteReadOnly([]txn.Txn{
		roSum([]txn.Key{key(0)}, &sum, &rows),
		incTxn(0),
	})
	if res[0] != nil {
		t.Fatalf("read-only slot: %v", res[0])
	}
	if !errors.Is(res[1], ErrNotReadOnly) {
		t.Fatalf("writer slot: %v, want ErrNotReadOnly", res[1])
	}
	if got := readCounter(t, e, 0); got != 0 {
		t.Fatalf("refused writer ran: counter = %d", got)
	}
}

// TestFastPathWriteAttemptAborts: a "read-only" transaction that writes
// anyway aborts with the same access-set violation the pipeline reports.
func TestFastPathWriteAttemptAborts(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 1)
	rogue := &txn.Proc{Body: func(c txn.Ctx) error {
		_ = c.Write(key(0), txn.NewValue(8, 9))
		return nil
	}}
	res := e.ExecuteBatch([]txn.Txn{rogue})
	if res[0] == nil || res[0].Error() != fmt.Sprintf("bohm: write to key %+v outside declared write-set", key(0)) {
		t.Fatalf("rogue write result: %v", res[0])
	}
	if got := readCounter(t, e, 0); got != 0 {
		t.Fatalf("rogue write landed: %d", got)
	}
}

// TestDisableReadOnlyFastPathIdenticalResults drives a deterministic
// single-stream workload — non-commutative writes, deletes, aborts, and
// read-only point reads and scans whose observations are captured — with
// the fast path on and off, and requires every per-transaction outcome,
// every read-only observation, and the final state to match exactly. For
// sequential submitters the fast path's watermark serialization point is
// observationally identical to pipeline serialization (the recency gate
// covers every acknowledged write and nothing else is in flight).
func TestDisableReadOnlyFastPathIdenticalResults(t *testing.T) {
	const nkeys = 32
	all := txn.KeyRange{Table: 0, Lo: 0, Hi: nkeys}
	run := func(disable bool) ([]string, map[txn.Key]uint64) {
		reg := durRegistry()
		cfg := DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 2
		cfg.BatchSize = 16
		cfg.Capacity = 1 << 12
		cfg.DisableReadOnlyFastPath = disable
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := uint64(0); i < nkeys; i++ {
			if err := e.Load(key(i), txn.NewValue(16, i)); err != nil {
				t.Fatal(err)
			}
		}
		var log []string
		x := uint64(0x9e3779b97f4a7c15)
		next := func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
		for round := 0; round < 60; round++ {
			// A writing call: non-commutative mutations pin the order.
			muts := make([]txn.Txn, 4)
			for i := range muts {
				op := opIncrement
				switch next() % 8 {
				case 0:
					op = opDelete
				case 1:
					op = opAbort
				}
				muts[i] = mutCall(t, reg, next()%nkeys, next()%1000, byte(op))
			}
			for i, err := range e.ExecuteBatch(muts) {
				log = append(log, fmt.Sprintf("r%d.w%d:%v", round, i, err))
			}
			// A read-only call: point sums and a full scan, observations
			// logged. Sequential submission makes these deterministic.
			var psum, ssum uint64
			var prows, srows int
			ks := []txn.Key{key(next() % nkeys), key(next() % nkeys), key(next() % nkeys)}
			res := e.ExecuteBatch([]txn.Txn{roSum(ks, &psum, &prows), roScan(all, &ssum, &srows)})
			log = append(log, fmt.Sprintf("r%d.reads:%v,%v:point=%d/%d:scan=%d/%d",
				round, res[0], res[1], psum, prows, ssum, srows))
			// The inline Read, same determinism argument.
			v, err := e.Read(key(next()%nkeys), nil)
			got := uint64(0)
			if err == nil {
				got = txn.U64(v)
			}
			log = append(log, fmt.Sprintf("r%d.read:%v:%d", round, err, got))
		}
		return log, dumpState(e)
	}
	logOn, stateOn := run(false)
	logOff, stateOff := run(true)
	if len(logOn) != len(logOff) {
		t.Fatalf("log lengths differ: %d vs %d", len(logOn), len(logOff))
	}
	for i := range logOn {
		if logOn[i] != logOff[i] {
			t.Fatalf("outcome %d differs:\n  fast path: %s\n  pipeline:  %s", i, logOn[i], logOff[i])
		}
	}
	if len(stateOn) != len(stateOff) {
		t.Fatalf("final states differ in size: %d vs %d", len(stateOn), len(stateOff))
	}
	for k, v := range stateOn {
		if ov, ok := stateOff[k]; !ok || ov != v {
			t.Fatalf("final state differs at %+v: %d vs %d (present=%v)", k, v, ov, ok)
		}
	}
}

// TestReadOnlyFastPathStress hammers snapshot readers against everything
// that reclaims or recycles memory: concurrent conserved-sum transfers
// (pipelined writes with GC cutting chains into the version pools),
// side-table inserts (directory churn), periodic checkpointing (GC pin
// movement), and small batches (fast retire churn). Readers check the
// conserved sum through fast-path point reads, fast-path scans, and the
// inline Read API; a snapshot that ever observes a recycled or cut
// version breaks the sum — or trips the race detector, which is how CI
// runs this.
func TestReadOnlyFastPathStress(t *testing.T) {
	const (
		accounts = 64
		total    = uint64(accounts) * 100
	)
	reg := txn.NewRegistry()
	reg.Register("xfer", func(args []byte) (txn.Txn, error) {
		a := binary.LittleEndian.Uint64(args) % accounts
		b := binary.LittleEndian.Uint64(args[8:]) % accounts
		if a == b {
			b = (b + 1) % accounts
		}
		ka, kb := key(a), key(b)
		return &txn.Proc{
			Reads:  []txn.Key{ka, kb},
			Writes: []txn.Key{ka, kb},
			Body: func(c txn.Ctx) error {
				va, err := c.Read(ka)
				if err != nil {
					return err
				}
				vb, err := c.Read(kb)
				if err != nil {
					return err
				}
				if err := c.Write(ka, txn.NewValue(16, txn.U64(va)-1)); err != nil {
					return err
				}
				return c.Write(kb, txn.NewValue(16, txn.U64(vb)+1))
			},
		}, nil
	})
	reg.Register("ins", func(args []byte) (txn.Txn, error) {
		k := txn.Key{Table: 1, ID: binary.LittleEndian.Uint64(args)}
		return &txn.Proc{
			Writes: []txn.Key{k},
			Body:   func(c txn.Ctx) error { return c.Write(k, txn.NewValue(8, k.ID)) },
		}, nil
	})
	call := func(proc string, a, b uint64) txn.Txn {
		args := make([]byte, 16)
		binary.LittleEndian.PutUint64(args, a)
		binary.LittleEndian.PutUint64(args[8:], b)
		return reg.MustCall(proc, args)
	}

	cfg := DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 2
	cfg.ReadWorkers = 2
	cfg.BatchSize = 32
	cfg.Capacity = 1 << 14
	cfg.GC = true
	cfg.LogDir = t.TempDir()
	cfg.SyncPolicy = wal.SyncNever
	cfg.CheckpointEveryBatches = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := uint64(0); i < accounts; i++ {
		if err := e.Load(key(i), txn.NewValue(16, 100)); err != nil {
			t.Fatal(err)
		}
	}
	allAccounts := txn.KeyRange{Table: 0, Lo: 0, Hi: accounts}
	allKeys := make([]txn.Key, accounts)
	for i := range allKeys {
		allKeys[i] = key(uint64(i))
	}

	const (
		writeStreams = 2
		readStreams  = 2
		rounds       = 120
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writeStreams+readStreams)
	for s := 0; s < writeStreams; s++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*2654435761 + 1
			next := func() uint64 {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return x
			}
			for r := 0; r < rounds; r++ {
				ts := make([]txn.Txn, 16)
				for i := range ts {
					if next()%4 == 0 {
						ts[i] = call("ins", seed<<32|uint64(r)<<8|uint64(i), 0)
					} else {
						ts[i] = call("xfer", next(), next())
					}
				}
				for i, err := range e.ExecuteBatch(ts) {
					if err != nil {
						errCh <- fmt.Errorf("write stream %d round %d txn %d: %w", seed, r, i, err)
						return
					}
				}
			}
		}(uint64(s))
	}
	for s := 0; s < readStreams; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var buf []byte
			for r := 0; r < rounds; r++ {
				var ssum, psum uint64
				var srows, prows int
				res := e.ExecuteReadOnly([]txn.Txn{
					roScan(allAccounts, &ssum, &srows),
					roSum(allKeys, &psum, &prows),
				})
				for i, err := range res {
					if err != nil {
						errCh <- fmt.Errorf("read stream %d round %d txn %d: %w", seed, r, i, err)
						return
					}
				}
				if srows != accounts || ssum != total {
					errCh <- fmt.Errorf("read stream %d round %d: scan saw %d rows summing %d, want %d/%d",
						seed, r, srows, ssum, accounts, total)
					return
				}
				if prows != accounts || psum != total {
					errCh <- fmt.Errorf("read stream %d round %d: point reads saw %d rows summing %d, want %d/%d",
						seed, r, prows, psum, accounts, total)
					return
				}
				v, err := e.Read(key(uint64(r)%accounts), buf)
				if err != nil {
					errCh <- fmt.Errorf("read stream %d round %d: inline Read: %w", seed, r, err)
					return
				}
				buf = v[:0]
			}
		}(s)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	s := e.Stats()
	if s.ReadOnlyFastPath == 0 {
		t.Error("ReadOnlyFastPath = 0; the fast path never engaged")
	}
	// GC only cuts once the checkpointer has advanced the pin, which a
	// loaded host can starve for the whole concurrent phase; keep the
	// pipeline ticking until collection provably engaged (same pattern as
	// the pooling stress test).
	deadline := time.Now().Add(30 * time.Second)
	for e.Stats().VersionsCollected == 0 {
		if time.Now().After(deadline) {
			t.Error("VersionsCollected = 0; GC never ran against the readers")
			break
		}
		if res := e.ExecuteBatch([]txn.Txn{call("xfer", 1, 2)}); res[0] != nil {
			t.Fatal(res[0])
		}
	}
	sum := uint64(0)
	for k, v := range dumpState(e) {
		if k.Table == 0 {
			sum += v
		}
	}
	if sum != total {
		t.Errorf("final account sum = %d, want %d", sum, total)
	}
}

// TestFastPathMixedWithDuplicateRejection locks the result-slot mapping
// when a single call combines a duplicate-write-set rejection, pipelined
// writers, and diverted read-only transactions.
func TestFastPathMixedWithDuplicateRejection(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 4)
	if res := e.ExecuteBatch([]txn.Txn{incTxn(2)}); res[0] != nil {
		t.Fatal(res[0])
	}
	dup := &txn.Proc{Writes: []txn.Key{key(0), key(0)}, Body: func(c txn.Ctx) error { return nil }}
	var s1, s2 uint64
	var r1, r2 int
	res := e.ExecuteBatch([]txn.Txn{
		roSum([]txn.Key{key(2)}, &s1, &r1), // all-ro prefix: exercises the backfill
		dup,
		incTxn(1),
		roSum([]txn.Key{key(2)}, &s2, &r2),
	})
	if !errors.Is(res[1], ErrDuplicateWriteKey) {
		t.Fatalf("dup slot: %v", res[1])
	}
	for _, i := range []int{0, 2, 3} {
		if res[i] != nil {
			t.Fatalf("slot %d: %v", i, res[i])
		}
	}
	if s1 != 1 || s2 != 1 || r1 != 1 || r2 != 1 {
		t.Fatalf("reads observed %d/%d over %d/%d rows, want 1/1 over 1/1", s1, s2, r1, r2)
	}
	if got := readCounter(t, e, 1); got != 1 {
		t.Fatalf("piped writer: key 1 = %d, want 1", got)
	}
	if got := readCounter(t, e, 0); got != 0 {
		t.Fatalf("rejected dup wrote: key 0 = %d", got)
	}
}

// TestFastPathReadsNeverExposeNonDurableState: under SyncByInterval a
// write can execute long before its fsync; a fast-path read must not
// return it until it is durable — otherwise the reader externalizes
// state a crash rolls back. The sequence below acknowledges nothing
// early: the reader's observation, once returned, must survive Kill +
// Recover.
func TestFastPathReadsNeverExposeNonDurableState(t *testing.T) {
	reg := durRegistry()
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.SyncPolicy = wal.SyncByInterval
	cfg.SyncInterval = 100 * time.Millisecond
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(key(1), txn.NewValue(16, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	// The write executes quickly but becomes durable only at the next
	// interval sync; the concurrent read must block on the same bound.
	// The crash comes right after the read returns — anything the read
	// externalized must therefore survive it. (The writer may see a
	// "commit not durable" error if the kill lands before its sync;
	// that is the policy's contract, not a failure.)
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		_ = e.ExecuteBatch([]txn.Txn{mutCall(t, reg, 1, 3, opIncrement)})
	}()
	// Poll until the read observes the write (recency makes this converge
	// once the write has completed execution).
	var observed uint64
	for {
		v, err := e.Read(key(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if observed = txn.U64(v); observed == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// The timing-free core assertion: the write sat in the log's buffer
	// until the interval sync, so a read returning it proves a sync
	// completed first — zero syncs here means the read externalized
	// state a crash would drop. (Engine.Kill alone cannot show that: its
	// shutdown drain lets the interval syncer finish the group commit.)
	if s := e.Stats().LogSyncs; s == 0 {
		t.Fatal("read returned a logged write before any log sync: externalized non-durable state")
	}
	e.Kill() // crash now: drops everything past the last sync
	<-writeDone

	r, err := Recover(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rv, err := r.Read(key(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := txn.U64(rv); got < observed {
		t.Fatalf("read externalized %d but recovery shows %d: a non-durable write escaped", observed, got)
	}
}
