package core

// Hooks for network front-ends (internal/server). The embedded API gets
// read-your-writes implicitly — ExecuteReadOnly captures ackedBatch on
// entry, and any externalized ack has already advanced it. A server
// serving many connections needs the bound as an explicit, transferable
// value: a recency token handed back with every acknowledgement, echoed
// on later reads, possibly by a different connection that merely
// observed the ack.

// AckedBatch returns the newest batch sequence containing an
// acknowledged transaction — the recency token a front-end returns to
// clients after their writes commit. A reader that waits for coverage of
// this bound (WaitCovered) observes every write acknowledged before the
// token was taken, regardless of which connection submitted it.
func (e *Engine) AckedBatch() uint64 {
	return e.ackedBatch.Load()
}

// WaitCovered blocks until the execution watermark covers token, then
// returns. Tokens above the sequenced frontier (stale clients, forged
// bytes) are clamped to it rather than waited for — a token can promise
// at most "everything acknowledged when it was minted", and nothing
// beyond the frontier has been acknowledged.
func (e *Engine) WaitCovered(token uint64) {
	if hi := e.seqBase + e.batches.Load(); token > hi {
		token = hi
	}
	e.waitRecent(token)
}
