package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// Tests for the CC-phase kernels: the shared partition-selection function,
// the per-batch hot-key memo's epoch isolation, the DisableCCKernels
// ablation's bit-identical results, and the -race stress interleaving
// hot-key RMW storms with scans, reaping and GC on the kernel path.

// TestPartitionSelectionShared pins every partition-routing site to the
// one shared function: for random keys, keyHashPart, partOfHash over the
// returned hash, and the engine's partitionOf must all agree, and the
// hash returned must be the key's own hash (so index probes may reuse
// it). rangeHash must round-trip a partition number through partOfHash.
func TestPartitionSelectionShared(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCWorkers = 3
	cfg.ExecWorkers = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.nparts != cfg.CCWorkers {
		t.Fatalf("nparts = %d, want %d", e.nparts, cfg.CCWorkers)
	}
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < 10000; i++ {
		k := txn.Key{Table: uint32(next() % 5), ID: next()}
		h, p := keyHashPart(k, e.nparts)
		if h != k.Hash() {
			t.Fatalf("keyHashPart hash %#x != key hash %#x", h, k.Hash())
		}
		if p < 0 || p >= e.nparts {
			t.Fatalf("partition %d out of range [0,%d)", p, e.nparts)
		}
		if got := partOfHash(h, e.nparts); got != p {
			t.Fatalf("partOfHash(%#x) = %d, keyHashPart said %d", h, got, p)
		}
		if got := e.partitionOf(k); got != p {
			t.Fatalf("partitionOf(%+v) = %d, keyHashPart said %d", k, got, p)
		}
	}
	for p := 0; p < e.nparts; p++ {
		if got := partOfHash(rangeHash(p), e.nparts); got != p {
			t.Fatalf("rangeHash(%d) routes to partition %d", p, got)
		}
	}
}

// TestMemoEpochProperty is the memo's isolation property: a chain pointer
// memoized under one epoch is never returned under any other, whatever
// the key/hash collision pattern — the O(1) "clear" at a batch boundary
// is real. Entries re-put under the new epoch are served again.
func TestMemoEpochProperty(t *testing.T) {
	m := newCCMemo()
	x := uint64(12345)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	// Every put under epoch ep carries that epoch's sentinel chain, so any
	// get that hits can be checked against the epoch it claims: a hit
	// under epoch E must return E's sentinel, whatever collision pattern
	// the small key range (heavy inter-epoch slot reuse) produced.
	const epochs = 6
	sentinel := make([]*storage.Chain, epochs+1)
	for ep := 1; ep <= epochs; ep++ {
		sentinel[ep] = storage.NewChain(nil)
	}
	for ep := uint64(1); ep <= epochs; ep++ {
		for i := 0; i < 4*memoSlots; i++ {
			k := txn.Key{ID: next() % 512}
			m.put(k.Hash(), k, sentinel[ep], ep)
		}
		for id := uint64(0); id < 512; id++ {
			k := txn.Key{ID: id}
			h := k.Hash()
			for q := uint64(1); q <= epochs; q++ {
				if ch, hit := m.get(h, k, q); hit && ch != sentinel[q] {
					t.Fatalf("get under epoch %d returned another epoch's chain (current epoch %d)", q, ep)
				}
			}
		}
	}
	// A distinguishable payload check: memoized chains come back for the
	// epoch that put them, not for any other.
	k := txn.Key{ID: 7}
	h := k.Hash()
	m.put(h, k, nil, 100)
	if ch, hit := m.get(h, k, 100); !hit || ch != nil {
		t.Fatalf("same-epoch get = (%v, %v), want memoized absence", ch, hit)
	}
	if _, hit := m.get(h, k, 101); hit {
		t.Fatal("next-epoch get hit a stale entry")
	}
}

// TestDisableCCKernelsIdenticalResults runs a deterministic mixed workload
// (increments, deletes, aborts, declared scans) through the preprocessed
// kernel path and the DisableCCKernels baseline and requires per-
// transaction outcomes, scan observations and final states to match
// exactly: the kernels must be invisible except in CC-phase cost.
func TestDisableCCKernelsIdenticalResults(t *testing.T) {
	run := func(disable bool) ([]string, map[txn.Key]uint64) {
		reg := durRegistry()
		cfg := DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 2
		cfg.BatchSize = 64
		cfg.Capacity = 1 << 12
		cfg.Preprocess = true
		cfg.PreprocessWorkers = 2
		cfg.DisableCCKernels = disable
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		loadInitial(t, e)
		var outcomes []string
		full := txn.KeyRange{Table: 0, Lo: 0, Hi: mutKeys + 64}
		for i := 0; i < 60; i++ {
			for _, err := range e.ExecuteBatch(workloadBatch(t, reg, i)) {
				if err == nil {
					outcomes = append(outcomes, "commit")
				} else {
					outcomes = append(outcomes, err.Error())
				}
			}
			rows, sum := 0, uint64(0)
			res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
				Ranges: []txn.KeyRange{full},
				Body: func(c txn.Ctx) error {
					return c.ReadRange(full, func(_ txn.Key, v []byte) error {
						rows++
						sum += txn.U64(v)
						return nil
					})
				},
			}})
			if res[0] != nil {
				t.Fatal(res[0])
			}
			outcomes = append(outcomes, fmt.Sprintf("scan:%d:%d", rows, sum))
		}
		return outcomes, dumpState(e)
	}

	onRes, onState := run(false)
	offRes, offState := run(true)
	if len(onRes) != len(offRes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(onRes), len(offRes))
	}
	for i := range onRes {
		if onRes[i] != offRes[i] {
			t.Fatalf("step %d: kernels %q vs DisableCCKernels %q", i, onRes[i], offRes[i])
		}
	}
	sameState(t, "kernels vs DisableCCKernels", onState, offState)
}

// TestCCKernelsStress hammers the kernel path where the memo earns its
// keep: hot-key RMW storms (a handful of keys touched by nearly every
// transaction in a batch), interleaved with conserved-sum transfers,
// range scans, insert/delete churn that keeps the reaper unlinking keys
// the memo has served, and chain GC, under concurrent submitters. CI runs
// it under -race; conserved sums and value-checked churn rows catch any
// stale chain a memoization bug could serve. Runs both preprocessed and
// unpreprocessed so both kernel dispatch paths see the storm.
func TestCCKernelsStress(t *testing.T) {
	for _, pp := range []bool{false, true} {
		t.Run(fmt.Sprintf("preprocess=%v", pp), func(t *testing.T) {
			reg := reapStressRegistry()
			cfg := DefaultConfig()
			cfg.CCWorkers = 3
			cfg.ExecWorkers = 2
			cfg.BatchSize = 32
			cfg.Capacity = 1 << 14
			cfg.GC = true
			cfg.Preprocess = pp
			cfg.PreprocessWorkers = 2
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			for id := uint64(0); id < reapKeys; id++ {
				if err := e.Load(key(id), txn.NewValue(8, 100)); err != nil {
					t.Fatal(err)
				}
			}
			const (
				streams = 4
				rounds  = 80
				perSub  = 24
				hotKeys = 3 // the storm: most RMWs hit these
			)
			var wg sync.WaitGroup
			errCh := make(chan error, streams)
			for s := 0; s < streams; s++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					x := seed*2654435761 + 7
					next := func() uint64 {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
						return x
					}
					churnID := seed * 1000
					for r := 0; r < rounds; r++ {
						ts := make([]txn.Txn, perSub)
						for i := range ts {
							switch next() % 8 {
							case 0:
								ts[i] = reapCall(t, reg, next(), next(), reapOpScan)
							case 1:
								ts[i] = reapCall(t, reg, next(), next(), reapOpChurnScn)
							case 2:
								churnID++
								ts[i] = reapCall(t, reg, churnID, 0, reapOpChurnIns)
							case 3:
								ts[i] = reapCall(t, reg, churnID, 0, reapOpChurnDel)
							default:
								// Hot-key RMW: both endpoints drawn from the
								// tiny hot set, so one batch carries dozens of
								// placeholder inserts and read annotations for
								// the same few chains — the memo's hot path.
								ts[i] = reapCall(t, reg, next()%hotKeys, next()%hotKeys, reapOpMove)
							}
						}
						for i, err := range e.ExecuteBatch(ts) {
							if err != nil {
								errCh <- fmt.Errorf("stream %d round %d txn %d: %w", seed, r, i, err)
								return
							}
						}
					}
				}(uint64(s))
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
			// Tick until reaping has provably engaged, so the run is known
			// to have interleaved memoized probes with key reclamation.
			deadline := time.Now().Add(30 * time.Second)
			for e.Stats().KeysReaped == 0 {
				if time.Now().After(deadline) {
					t.Fatal("churn produced no reaped keys; stress never exercised reap/memo interleaving")
				}
				if res := e.ExecuteBatch([]txn.Txn{reapCall(t, reg, 1, 2, reapOpMove)}); res[0] != nil {
					t.Fatal(res[0])
				}
			}
			sum := uint64(0)
			for k, v := range dumpState(e) {
				if k.Table == 0 {
					sum += v
				}
			}
			if sum != reapTotal {
				t.Errorf("final account sum = %d, want %d", sum, reapTotal)
			}
		})
	}
}
