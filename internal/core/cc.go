package core

import (
	"sync/atomic"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// ccWorker is one concurrency control thread (§3.2.2–§3.2.4). Worker w
// owns the hash partition parts[w]: for every transaction in every batch it
// inserts placeholder versions for the write-set keys it owns, annotates
// read-set keys it owns with direct version references, and — with GC
// enabled — collects superseded versions below the execution watermark.
//
// CC workers process batches fully independently; the only coordination is
// the per-batch report to the forwarder, which hands a batch to the
// execution phase once every CC worker is done with it.
//
// Without pre-processing, every CC worker examines every transaction and
// filters by partition (the paper's base design); with pre-processing the
// worker walks a pre-computed per-partition work list instead.
func (e *Engine) ccWorker(w int) {
	defer e.ccWG.Done()
	part := e.parts[w]
	st := &e.ccStats[w]

	for b := range e.ccIn[w] {
		var wm uint64
		wmValid := false
		wmLookup := func() uint64 {
			if !wmValid {
				wm = e.watermark()
				wmValid = true
			}
			return wm
		}
		if b.plans != nil {
			e.runPlanned(w, b, wmLookup)
		} else {
			for _, nd := range b.nodes {
				// Reads first: a read-modify-write must observe the
				// version preceding the transaction's own write, so the
				// annotation must happen before this transaction's
				// placeholder lands.
				if nd.readRefs != nil {
					for i, k := range nd.reads {
						if e.partitionOf(k) != w {
							continue
						}
						if c := part.Get(k); c != nil {
							// Versions are pushed in timestamp order, so
							// the head is exactly the newest version with
							// Begin < nd.ts.
							nd.readRefs[i] = c.Head()
						}
					}
				}
				for i, k := range nd.writes {
					if e.partitionOf(k) != w {
						continue
					}
					e.insertPlaceholder(part, st, nd, i, b.seq, wmLookup)
				}
			}
		}
		// Batch barrier (§3.2.4): report completion to the forwarder,
		// which releases the batch to the execution phase once every CC
		// worker has finished it.
		e.ccDone[w] <- b
	}
	close(e.ccDone[w])
}

// insertPlaceholder creates the uninitialized version for write slot i of
// nd, links it into the record's chain, and opportunistically garbage
// collects the chain's tail below the execution watermark.
func (e *Engine) insertPlaceholder(part *storage.Map[storage.Chain], st *workerStats,
	nd *node, i int, batchSeq uint64, wmLookup func() uint64) {
	k := nd.writes[i]
	v := storage.NewPlaceholder(nd.ts, batchSeq, nd)
	chain, err := part.GetOrInsert(k, func() *storage.Chain {
		return storage.NewChain(nil)
	})
	if err != nil {
		// Index full: fail the placeholder so the execution phase aborts
		// the transaction instead of hanging.
		v.Install(nil, true)
		nd.writeVers[i] = v
		return
	}
	chain.Push(v)
	nd.writeVers[i] = v
	atomic.AddUint64(&st.versionsCreated, 1)
	if e.cfg.GC {
		if n := chain.Collect(wmLookup()); n > 0 {
			atomic.AddUint64(&st.versionsCollected, uint64(n))
		}
	}
}

// ownedKeys reports how many of ks belong to partition w; used by tests to
// validate the partitioning function's balance.
func (e *Engine) ownedKeys(ks []txn.Key, w int) int {
	n := 0
	for _, k := range ks {
		if e.partitionOf(k) == w {
			n++
		}
	}
	return n
}
