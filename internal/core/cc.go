package core

import (
	"runtime"
	"sync/atomic"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// ccWorker is one concurrency control thread (§3.2.2–§3.2.4). Worker w
// owns the hash partitions {p : p ≡ w (mod split.cc)} — one partition per
// worker in the fixed-split default, a strided set when the adaptive
// governor has shifted the split: for every transaction in every batch it
// inserts placeholder versions for the write-set keys its partitions own,
// annotates read-set keys with direct version references, and — with GC
// enabled — collects superseded versions below the execution watermark.
//
// CC workers process batches fully independently; the only coordination is
// the per-batch report to the forwarder, which hands a batch to the
// execution phase once every CC worker is done with it. When a batch
// carries a new worker split, a worker quiesces on every worker's
// lifecycle frontier before adopting it — see the adoption comment below.
//
// Without pre-processing, every CC worker examines every transaction and
// filters by partition (the paper's base design); with pre-processing the
// worker walks a pre-computed per-partition work list instead — a dense
// hash-carrying slab on the kernel path, ragged per-preproc-worker
// sub-slices on the legacy (DisableCCKernels) path.
//
// The worker is also its partitions' index-lifecycle owner: once per batch
// it sweeps a bounded slice of each owned ordered directory and reaps keys
// whose newest surviving version is a tombstone below the watermark — the
// single writer of a partition is the only goroutine that ever unlinks
// directory entries, deletes hash slots or detaches chains, so reaping
// adds no atomics to the write path and inherits the same epoch argument
// that protects chain GC.
func (e *Engine) ccWorker(w int) {
	defer e.ccWG.Done()
	reapOn := e.cfg.GC && !e.cfg.DisableReaping
	var memo *ccMemo
	if !e.cfg.DisableCCKernels {
		memo = newCCMemo()
	}
	// grab is the worker's batched-placeholder scratch (kernel path); it
	// grows to the largest per-partition write run and is reused forever.
	var grab []*storage.Version
	split := e.split.Load()

	for b := range e.ccIn[w] {
		if b.split != split {
			// Adoption quiesce: the batch was stamped under a different
			// worker split, so partition ownership may be moving between
			// workers. Spin until every CC worker's lifecycle frontier
			// shows it fully finished the previous batch — including the
			// lifecycle work the kernel path defers past the barrier
			// report — only then can this worker touch partitions the old
			// assignment gave to someone else. Deadlock-free: a worker
			// only waits at the entry of batch b after publishing its own
			// frontier for b-1, and every worker's processing of b-1 is
			// independent, so all frontiers reach b-1. The frontier's
			// atomic store/load pair also carries the happens-before edge
			// that hands the partitions' iterators and cursors (partCC)
			// to their new owner.
			for !e.ccQuiesced(b.seq) {
				runtime.Gosched()
			}
			split = b.split
		}
		active := w < split.cc
		if active {
			e.ccBatch(w, split.cc, b, memo, reapOn, &grab)
			// Stage stamps: the first active worker to finish CASes the
			// barrier-start stamp, every active worker maxes the barrier-end
			// stamp. Metrics-off engines skip both; workers the split left
			// without partitions skip them too, so an idle worker's instant
			// pass never distorts the barrier-spread histogram.
			if o := e.obs; o != nil {
				now := o.now()
				b.obs.ccFirst.CompareAndSwap(0, now)
				for {
					cur := b.obs.ccLast.Load()
					if now <= cur || b.obs.ccLast.CompareAndSwap(cur, now) {
						break
					}
				}
			}
		}
		// Batch barrier (§3.2.4): report completion to the forwarder,
		// which releases the batch to the execution phase once every CC
		// worker has finished it. Workers without partitions under the
		// current split still report — the barrier's shape never changes.
		e.ccDone[w] <- b
		if active && memo != nil {
			// Deferred lifecycle (kernel path): pool release and the reap
			// sweep run after the barrier report, overlapping the batch's
			// execution phase instead of gating it. The work is per-batch
			// bookkeeping — nothing in this batch's plans depends on it —
			// and running it here takes it off the CC stage's critical
			// path (see ccLifecycle for why it stays correct).
			e.ccLifecycle(w, split.cc, b.seq, reapOn)
		}
		e.ccLife[w].Store(b.seq)
	}
	close(e.ccDone[w])
}

// ccQuiesced reports whether every CC worker's lifecycle frontier has
// reached seq-1 — the split-adoption gate.
func (e *Engine) ccQuiesced(seq uint64) bool {
	for i := range e.ccLife {
		if e.ccLife[i].Load()+1 < seq {
			return false
		}
	}
	return true
}

// ccBatch runs worker w's CC work for one batch under an active split of
// ccN workers: the plan (or the full node scan) partition by partition.
// On the legacy (kernels-off) path the per-partition lifecycle runs here,
// before the plans — the pre-kernel baseline order; the kernel path defers
// it until after the barrier report (see ccWorker).
func (e *Engine) ccBatch(w, ccN int, b *batch, memo *ccMemo, reapOn bool, grab *[]*storage.Version) {
	var wm uint64
	wmValid := false
	wmLookup := func() uint64 {
		if !wmValid {
			wm = e.watermark()
			wmValid = true
		}
		return wm
	}
	if memo == nil {
		e.ccLifecycle(w, ccN, b.seq, reapOn)
	}
	switch {
	case b.ppOff != nil:
		for p := w; p < e.nparts; p += ccN {
			e.runPlannedKernel(p, b, e.poolOf(p), memo, &e.partCC[p].annoIter, wmLookup, grab)
		}
	case b.plans != nil:
		for p := w; p < e.nparts; p += ccN {
			e.runPlanned(p, b, e.poolOf(p), &e.partCC[p].annoIter, wmLookup)
		}
	default:
		e.runUnplanned(w, ccN, b, memo, wmLookup)
	}
}

// ccLifecycle is worker w's per-batch partition lifecycle: version-pool
// release and the bounded reap sweep for every owned partition. The legacy
// path runs it before the batch's plans (the pre-kernel baseline); the
// kernel path runs it after the barrier report, where it overlaps the
// execution phase instead of sitting on the CC stage's critical path.
// Deferring it is safe on all three axes:
//
//   - Reaping after the plans instead of before: a reapable key's newest
//     version is a ready tombstone at or below the watermark, which every
//     transaction in this batch reads as not-found either way — annotated
//     references resolve the still-intact tombstone (versions survive
//     until the retire epoch drains). A key this batch also wrote is
//     simply not reaped (its head is no longer a ready tombstone), which
//     converges to the same observable state.
//   - Pool release after the plans: releases run between batch b's plans
//     and batch b+1's — the same inter-batch point the release-first
//     order used, with an equal-or-fresher watermark (safe: monotone).
//   - The memo: epoch-tagged by batch, so a chain detached here is never
//     consulted again — the next batch's probes carry a new epoch.
//
// Retiring under the just-reported batch's sequence is also unchanged:
// the deferred sweep is an extended CC step of batch b, and its retires
// drain only once the watermark passes b by retireLag.
func (e *Engine) ccLifecycle(w, ccN int, batchSeq uint64, reapOn bool) {
	var wm uint64
	wmValid := false
	wmLookup := func() uint64 {
		if !wmValid {
			wm = e.watermark()
			wmValid = true
		}
		return wm
	}
	for p := w; p < e.nparts; p += ccN {
		pool := e.poolOf(p)
		if pool != nil {
			// Recycle versions whose retire epoch has drained: collected
			// during the CC step of a batch the watermark has passed by
			// retireLag (see the lifetime argument at retireLag).
			if cwm := wmLookup(); cwm > retireLag {
				pool.Release(cwm - retireLag)
			}
		}
		if reapOn {
			e.reapSweep(p, e.parts[p], pool, &e.ccStats[p], &e.partCC[p], batchSeq, wmLookup())
		}
	}
}

// runUnplanned is the no-preprocessing CC path: every worker scans every
// node and filters keys by partition ownership. On the kernel path each
// key is hashed exactly once — the same hash selects the partition, probes
// the memo and probes the hash table — where the baseline hashes once for
// partition selection and again inside every Get/GetOrInsert.
func (e *Engine) runUnplanned(w, ccN int, b *batch, memo *ccMemo, wmLookup func() uint64) {
	m := e.nparts
	for _, nd := range b.nodes {
		// Reads and range annotations first: a read-modify-write must
		// observe the version preceding the transaction's own write, so
		// annotations must happen before this transaction's placeholders
		// land.
		if nd.readRefs != nil {
			for i, k := range nd.reads {
				h, p := keyHashPart(k, m)
				if p%ccN != w {
					continue
				}
				if memo != nil {
					ch, hit := memo.get(h, k, b.seq)
					if !hit {
						ch = e.parts[p].GetHashed(k, h)
						memo.put(h, k, ch, b.seq)
					}
					if ch != nil {
						nd.readRefs[i] = ch.Head()
					}
				} else if c := e.parts[p].Get(k); c != nil {
					// Versions are pushed in timestamp order, so the head is
					// exactly the newest version with Begin < nd.ts.
					nd.readRefs[i] = c.Head()
				}
			}
		}
		if nd.rangeRefs != nil {
			for r := range nd.ranges {
				for p := w; p < m; p += ccN {
					e.annotateRange(p, b, nd, r, &e.partCC[p].annoIter)
				}
			}
		}
		for i, k := range nd.writes {
			h, p := keyHashPart(k, m)
			if p%ccN != w {
				continue
			}
			if memo != nil {
				var ks kernelStats
				e.insertPlaceholderHashed(p, e.parts[p], &ks, e.poolOf(p), memo, nd, i, h, b.seq, wmLookup, nil)
				ks.flush(&e.ccStats[p])
			} else {
				e.insertPlaceholder(e.parts[p], &e.ccStats[p], e.poolOf(p), nd, i, b.seq, wmLookup)
			}
		}
	}
}

// poolOf returns partition p's version pool, nil under DisablePooling.
func (e *Engine) poolOf(p int) *storage.VersionPool {
	if e.vpools == nil {
		return nil
	}
	return e.vpools[p]
}

// ccPartState is one partition's CC-side mutable state: the iterators and
// cursors that persist across batches. annoIter serves range annotation,
// reapIter the lifecycle sweep; both keep skiplist fingers so neither pays
// a full descent per use. Exactly one CC worker — the partition's owner
// under the current split — touches the struct; an ownership handoff is
// ordered by the quiesce-on-frontier protocol in ccWorker.
type ccPartState struct {
	annoIter   storage.DirIter
	reapIter   storage.DirIter
	reapCursor txn.Key
	// reapBudget is the adaptive sweep budget, scaled each sweep by the
	// tombstone hit rate the previous sweep observed (satellite of the
	// CC-kernel work; fixed at reapSweepPerBatch under
	// Config.DisableAdaptiveReap).
	reapBudget int32
}

// reapSweepPerBatch is the fixed per-partition sweep budget: how many
// directory keys one sweep examines, so the lifecycle work per batch is
// O(1) regardless of table size; the cursor wraps, covering the whole
// directory over successive batches. It is the adaptive budget's starting
// point and the constant budget under DisableAdaptiveReap.
const reapSweepPerBatch = 256

// Adaptive budget bounds: a mass delete doubles the budget geometrically
// up to reapBudgetMax (converging in O(log) sweeps instead of
// O(dead/256)), a quiescent directory decays to reapBudgetMin so
// steady-state batches pay less lifecycle work than the fixed baseline.
const (
	reapBudgetMin = 64
	reapBudgetMax = 4096
)

// nextReapBudget scales the sweep budget by the observed tombstone hit
// rate: reaping more than 1/8 of the examined keys doubles it, reaping
// nothing halves it, anything between holds it steady.
func nextReapBudget(cur int32, reaped, examined int) int32 {
	switch {
	case examined > 0 && reaped*8 >= examined:
		cur *= 2
	case reaped == 0:
		cur /= 2
	}
	if cur < reapBudgetMin {
		return reapBudgetMin
	}
	if cur > reapBudgetMax {
		return reapBudgetMax
	}
	return cur
}

// reapSweep is the index-lifecycle pass: it resumes the partition's sweep
// cursor and examines up to the partition's budget of directory keys,
// reaping each key whose chain head is a ready tombstone from a batch at
// or below the watermark. Such a key is invisible to every live and future
// reader — any transaction still executing (or any snapshot reader, whose
// epoch caps the watermark) has a timestamp above the tombstone — so
// unlinking the directory entry, freeing the hash slot and detaching the
// chain changes no observable result; the detached versions retire through
// the version-pool limbo under the batch's sequence, exactly like chain-GC
// cuts, and are not reused until the retireLag epoch drains.
func (e *Engine) reapSweep(p int, part *storage.Map[storage.Chain], pool *storage.VersionPool,
	st *workerStats, ps *ccPartState, batchSeq, wm uint64) {
	budget := int(ps.reapBudget)
	if e.cfg.DisableAdaptiveReap {
		budget = reapSweepPerBatch
	}
	d := e.dirs[p]
	it := &ps.reapIter
	if !it.SeekGE(d, ps.reapCursor) {
		// Past the end (or empty): wrap to the start for the next batch.
		ps.reapCursor = txn.Key{}
		return
	}
	examined, reaped := 0, 0
	next := txn.Key{} // wraps unless the budget runs out mid-directory
	for {
		k := it.Key()
		more := it.Next() // step off k before a reap unlinks its node
		examined++
		if e.maybeReap(p, part, pool, st, k, batchSeq, wm) {
			reaped++
		}
		if !more {
			break
		}
		if examined >= budget {
			next = it.Key()
			break
		}
	}
	ps.reapCursor = next
	if !e.cfg.DisableAdaptiveReap {
		ps.reapBudget = nextReapBudget(int32(budget), reaped, examined)
	}
}

// maybeReap reaps k if its record is proven dead: the chain's newest
// version is a ready tombstone created in a batch at or below wm. Reports
// whether it reaped — the signal the adaptive budget scales on.
func (e *Engine) maybeReap(p int, part *storage.Map[storage.Chain], pool *storage.VersionPool,
	st *workerStats, k txn.Key, batchSeq, wm uint64) bool {
	h := k.Hash()
	ch := part.GetHashed(k, h)
	if ch == nil {
		return false
	}
	head := ch.Head()
	if head == nil || !head.Ready() || head.Batch > wm {
		return false
	}
	if _, tomb := head.Data(); !tomb {
		return false
	}
	// Order matters for lock-free readers: the directory entry goes first
	// (scans stop finding k; point reads still resolve the tombstone),
	// then the hash slot (point reads go not-found), then the chain
	// detaches (readers that already hold it see the intact tombstone
	// until the retire epoch drains). Every path reports k dead, which is
	// what the tombstone already reported.
	dirBytes, _ := e.dirs[p].Remove(k)
	part.DeleteHashed(k, h)
	vers := ch.DetachAll()
	n := uint64(0)
	for v := vers; v != nil; v = v.Prev() {
		n++
	}
	if pool != nil {
		pool.Retire(vers, batchSeq)
	}
	atomic.AddUint64(&st.keysReaped, 1)
	atomic.AddUint64(&st.dirBytesReclaimed, dirBytes)
	atomic.AddUint64(&st.versionsCollected, n)
	return true
}

// insertPlaceholder creates the uninitialized version for write slot i of
// nd — drawn from the partition's version pool when pooling is on — links
// it into the record's chain, registers first-ever keys in the partition's
// ordered directory, and opportunistically garbage collects the chain's
// tail below the execution watermark, handing collected versions back to
// the pool. This is the kernels-off baseline: it re-hashes k inside
// GetOrInsert (and a third time for a first-ever key's partitionOf).
func (e *Engine) insertPlaceholder(part *storage.Map[storage.Chain], st *workerStats,
	pool *storage.VersionPool, nd *node, i int, batchSeq uint64, wmLookup func() uint64) {
	k := nd.writes[i]
	var v *storage.Version
	if pool != nil {
		v = pool.NewPlaceholder(nd.ts, batchSeq, nd)
	} else {
		v = storage.NewPlaceholder(nd.ts, batchSeq, nd)
	}
	chain, created, err := part.GetOrInsert(k, func() *storage.Chain {
		return storage.NewChain(nil)
	})
	if err != nil {
		// Index full: fail the placeholder so the execution phase aborts
		// the transaction instead of hanging.
		v.Install(nil, true)
		nd.writeVers[i] = v
		return
	}
	chain.Push(v)
	if created {
		// Directory maintenance happens here — at placeholder-insertion
		// time — which is what makes range scans phantom-free: the key
		// becomes scannable in the same pipeline step that fixes its
		// version's place in the serial order. The push above precedes
		// the directory insert, so a directory key always has a chain
		// head within this partition.
		e.dirs[e.partitionOf(k)].Insert(k)
	}
	nd.writeVers[i] = v
	atomic.AddUint64(&st.versionsCreated, 1)
	if e.cfg.GC {
		if head, n := chain.CollectReclaim(wmLookup()); n > 0 {
			atomic.AddUint64(&st.versionsCollected, uint64(n))
			if pool != nil {
				// Park the cut sublist until the retire epoch of this
				// batch drains; without a pool the sublist is simply
				// abandoned to the runtime's collector, as before.
				pool.Retire(head, batchSeq)
			}
		}
	}
}

// insertPlaceholderHashed is insertPlaceholder on the kernel path: the
// caller supplies the key's hash (computed once, at partition selection)
// and the per-batch memo. A memo hit on a live chain skips the hash-table
// probe entirely — the hot-key case under skew; a memoized absence or a
// miss falls through to one single-hash GetOrInsert and memoizes the
// result, upgrading a previously memoized absence in place. Stat counts
// accumulate into the caller's plain locals (st), flushed with one atomic
// add per partition instead of two per write.
func (e *Engine) insertPlaceholderHashed(p int, part *storage.Map[storage.Chain], st *kernelStats,
	pool *storage.VersionPool, memo *ccMemo, nd *node, i int, h uint64, batchSeq uint64,
	wmLookup func() uint64, v *storage.Version) {
	k := nd.writes[i]
	if v != nil {
		// Pre-grabbed by the planned kernel's batched acquisition; only
		// the per-write stamp remains.
		v.InitPlaceholder(nd.ts, batchSeq, nd)
	} else if pool != nil {
		v = pool.NewPlaceholder(nd.ts, batchSeq, nd)
	} else {
		v = storage.NewPlaceholder(nd.ts, batchSeq, nd)
	}
	chain, hit := memo.get(h, k, batchSeq)
	created := false
	if !hit || chain == nil {
		var err error
		chain, created, err = part.GetOrInsertHashed(k, h, func() *storage.Chain {
			return storage.NewChain(nil)
		})
		if err != nil {
			v.Install(nil, true)
			nd.writeVers[i] = v
			return
		}
		memo.put(h, k, chain, batchSeq)
	}
	chain.Push(v)
	if created {
		// Same phantom-freedom ordering as insertPlaceholder: push, then
		// directory insert. The partition is already known — no re-hash.
		e.dirs[p].Insert(k)
	}
	nd.writeVers[i] = v
	st.created++
	if e.cfg.GC {
		if head, n := chain.CollectReclaim(wmLookup()); n > 0 {
			st.collected += uint64(n)
			if pool != nil {
				pool.Retire(head, batchSeq)
			}
		}
	}
}

// kernelStats is the kernel CC path's per-partition stat accumulator:
// plain counters bumped per write, flushed to the shared workerStats with
// one atomic add per counter per partition.
type kernelStats struct {
	created   uint64
	collected uint64
}

// flush adds the accumulated counts to partition stats st and zeroes the
// accumulator.
func (ks *kernelStats) flush(st *workerStats) {
	if ks.created != 0 {
		atomic.AddUint64(&st.versionsCreated, ks.created)
	}
	if ks.collected != 0 {
		atomic.AddUint64(&st.versionsCollected, ks.collected)
	}
	*ks = kernelStats{}
}

// annotateRange fills nd.rangeRefs[r][p]: partition p's keys inside
// declared range r, each with its chain head at this point of the CC
// stream. Because the owning worker processes transactions in timestamp
// order and annotates before inserting nd's own placeholders, the head is
// exactly the newest version with Begin < nd.ts — the version a
// serializable scan at nd.ts must observe. Keys created by
// later-timestamped transactions are not yet in the directory, and keys
// created by earlier ones all are: the annotation is a phantom-free
// snapshot of the range by construction. (Keys reaped by this worker are
// equally consistent: reaping requires a tombstone below the watermark,
// which every transaction in this batch would have read as not-found
// anyway.)
//
// When the partition's key fences exclude the declared range outright the
// directory walk is skipped entirely — the annotation is the empty set by
// the same argument, since a fence admits every key inserted before this
// point of the CC stream. Otherwise the walk resumes the partition's
// persistent iterator, whose finger turns the per-range skiplist descent
// into an O(log distance) relocation.
func (e *Engine) annotateRange(p int, b *batch, nd *node, r int, it *storage.DirIter) {
	d := e.dirs[p]
	if d.ExcludesRange(nd.ranges[r]) {
		atomic.AddUint64(&e.ccStats[p].rangeFenceSkips, 1)
		nd.rangeRefs[r][p] = nil
		return
	}
	part := e.parts[p]
	var ents []rangeEntry
	pooled := b.ents != nil
	if pooled {
		ents = b.ents[p].take()
	}
	limit := nd.ranges[r].LimitKey()
	for ok := it.SeekGE(d, nd.ranges[r].FirstKey()); ok && it.Key().Less(limit); ok = it.Next() {
		if c := part.Get(it.Key()); c != nil {
			if h := c.Head(); h != nil {
				ents = append(ents, rangeEntry{k: it.Key(), v: h})
			}
		}
	}
	if pooled {
		ents = b.ents[p].commit(ents)
	}
	nd.rangeRefs[r][p] = ents
}

// ownedKeys reports how many of ks belong to partition w; used by tests to
// validate the partitioning function's balance.
func (e *Engine) ownedKeys(ks []txn.Key, w int) int {
	n := 0
	for _, k := range ks {
		if e.partitionOf(k) == w {
			n++
		}
	}
	return n
}
