package core

import (
	"sync/atomic"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// ccWorker is one concurrency control thread (§3.2.2–§3.2.4). Worker w
// owns the hash partition parts[w]: for every transaction in every batch it
// inserts placeholder versions for the write-set keys it owns, annotates
// read-set keys it owns with direct version references, and — with GC
// enabled — collects superseded versions below the execution watermark.
//
// CC workers process batches fully independently; the only coordination is
// the per-batch report to the forwarder, which hands a batch to the
// execution phase once every CC worker is done with it.
//
// Without pre-processing, every CC worker examines every transaction and
// filters by partition (the paper's base design); with pre-processing the
// worker walks a pre-computed per-partition work list instead.
//
// The worker is also its partition's index-lifecycle owner: once per batch
// it sweeps a bounded slice of the ordered directory and reaps keys whose
// newest surviving version is a tombstone below the watermark — the single
// writer of the partition is the only goroutine that ever unlinks
// directory entries, deletes hash slots or detaches chains, so reaping
// adds no atomics to the write path and inherits the same epoch argument
// that protects chain GC.
func (e *Engine) ccWorker(w int) {
	defer e.ccWG.Done()
	part := e.parts[w]
	st := &e.ccStats[w]
	var pool *storage.VersionPool
	if e.vpools != nil {
		pool = e.vpools[w]
	}
	reapOn := e.cfg.GC && !e.cfg.DisableReaping
	// annoIter serves range annotation, reapIter the lifecycle sweep; both
	// keep skiplist fingers so neither pays a full descent per use. They
	// are plain locals: only this goroutine touches them.
	var annoIter, reapIter storage.DirIter
	var reapCursor txn.Key

	for b := range e.ccIn[w] {
		var wm uint64
		wmValid := false
		wmLookup := func() uint64 {
			if !wmValid {
				wm = e.watermark()
				wmValid = true
			}
			return wm
		}
		if pool != nil {
			// Recycle versions whose retire epoch has drained: collected
			// during the CC step of a batch the watermark has passed by
			// retireLag (see the lifetime argument at retireLag).
			if cwm := wmLookup(); cwm > retireLag {
				pool.Release(cwm - retireLag)
			}
		}
		if reapOn {
			reapCursor = e.reapSweep(w, part, pool, st, &reapIter, reapCursor, b.seq, wmLookup())
		}
		if b.plans != nil {
			e.runPlanned(w, b, pool, &annoIter, wmLookup)
		} else {
			for _, nd := range b.nodes {
				// Reads and range annotations first: a read-modify-write
				// must observe the version preceding the transaction's
				// own write, so annotations must happen before this
				// transaction's placeholders land.
				if nd.readRefs != nil {
					for i, k := range nd.reads {
						if e.partitionOf(k) != w {
							continue
						}
						if c := part.Get(k); c != nil {
							// Versions are pushed in timestamp order, so
							// the head is exactly the newest version with
							// Begin < nd.ts.
							nd.readRefs[i] = c.Head()
						}
					}
				}
				if nd.rangeRefs != nil {
					for r := range nd.ranges {
						e.annotateRange(w, b, nd, r, &annoIter)
					}
				}
				for i, k := range nd.writes {
					if e.partitionOf(k) != w {
						continue
					}
					e.insertPlaceholder(part, st, pool, nd, i, b.seq, wmLookup)
				}
			}
		}
		// Stage stamps: the first worker to finish CASes the barrier-start
		// stamp, every worker maxes the barrier-end stamp. Metrics-off
		// engines skip both (one nil check per batch per worker).
		if o := e.obs; o != nil {
			now := o.now()
			b.obs.ccFirst.CompareAndSwap(0, now)
			for {
				cur := b.obs.ccLast.Load()
				if now <= cur || b.obs.ccLast.CompareAndSwap(cur, now) {
					break
				}
			}
		}
		// Batch barrier (§3.2.4): report completion to the forwarder,
		// which releases the batch to the execution phase once every CC
		// worker has finished it.
		e.ccDone[w] <- b
	}
	close(e.ccDone[w])
}

// reapSweepPerBatch bounds how many directory keys one sweep examines, so
// the lifecycle work per batch is O(1) regardless of table size; the
// cursor wraps, covering the whole directory over successive batches.
const reapSweepPerBatch = 256

// reapSweep is the index-lifecycle pass: it resumes the partition's sweep
// cursor and examines up to reapSweepPerBatch directory keys, reaping each
// key whose chain head is a ready tombstone from a batch at or below the
// watermark. Such a key is invisible to every live and future reader —
// any transaction still executing (or any snapshot reader, whose epoch
// caps the watermark) has a timestamp above the tombstone — so unlinking
// the directory entry, freeing the hash slot and detaching the chain
// changes no observable result; the detached versions retire through the
// version-pool limbo under the batch's sequence, exactly like chain-GC
// cuts, and are not reused until the retireLag epoch drains. Returns the
// next sweep cursor.
func (e *Engine) reapSweep(w int, part *storage.Map[storage.Chain], pool *storage.VersionPool,
	st *workerStats, it *storage.DirIter, cursor txn.Key, batchSeq, wm uint64) txn.Key {
	d := e.dirs[w]
	if !it.SeekGE(d, cursor) {
		// Past the end (or empty): wrap to the start for the next batch.
		return txn.Key{}
	}
	for i := 0; i < reapSweepPerBatch; i++ {
		k := it.Key()
		more := it.Next() // step off k before a reap unlinks its node
		e.maybeReap(w, part, pool, st, k, batchSeq, wm)
		if !more {
			return txn.Key{}
		}
	}
	return it.Key()
}

// maybeReap reaps k if its record is proven dead: the chain's newest
// version is a ready tombstone created in a batch at or below wm.
func (e *Engine) maybeReap(w int, part *storage.Map[storage.Chain], pool *storage.VersionPool,
	st *workerStats, k txn.Key, batchSeq, wm uint64) {
	ch := part.Get(k)
	if ch == nil {
		return
	}
	head := ch.Head()
	if head == nil || !head.Ready() || head.Batch > wm {
		return
	}
	if _, tomb := head.Data(); !tomb {
		return
	}
	// Order matters for lock-free readers: the directory entry goes first
	// (scans stop finding k; point reads still resolve the tombstone),
	// then the hash slot (point reads go not-found), then the chain
	// detaches (readers that already hold it see the intact tombstone
	// until the retire epoch drains). Every path reports k dead, which is
	// what the tombstone already reported.
	dirBytes, _ := e.dirs[w].Remove(k)
	part.Delete(k)
	vers := ch.DetachAll()
	n := uint64(0)
	for v := vers; v != nil; v = v.Prev() {
		n++
	}
	if pool != nil {
		pool.Retire(vers, batchSeq)
	}
	atomic.AddUint64(&st.keysReaped, 1)
	atomic.AddUint64(&st.dirBytesReclaimed, dirBytes)
	atomic.AddUint64(&st.versionsCollected, n)
}

// insertPlaceholder creates the uninitialized version for write slot i of
// nd — drawn from the partition's version pool when pooling is on — links
// it into the record's chain, registers first-ever keys in the partition's
// ordered directory, and opportunistically garbage collects the chain's
// tail below the execution watermark, handing collected versions back to
// the pool.
func (e *Engine) insertPlaceholder(part *storage.Map[storage.Chain], st *workerStats,
	pool *storage.VersionPool, nd *node, i int, batchSeq uint64, wmLookup func() uint64) {
	k := nd.writes[i]
	var v *storage.Version
	if pool != nil {
		v = pool.NewPlaceholder(nd.ts, batchSeq, nd)
	} else {
		v = storage.NewPlaceholder(nd.ts, batchSeq, nd)
	}
	chain, created, err := part.GetOrInsert(k, func() *storage.Chain {
		return storage.NewChain(nil)
	})
	if err != nil {
		// Index full: fail the placeholder so the execution phase aborts
		// the transaction instead of hanging.
		v.Install(nil, true)
		nd.writeVers[i] = v
		return
	}
	chain.Push(v)
	if created {
		// Directory maintenance happens here — at placeholder-insertion
		// time — which is what makes range scans phantom-free: the key
		// becomes scannable in the same pipeline step that fixes its
		// version's place in the serial order. The push above precedes
		// the directory insert, so a directory key always has a chain
		// head within this partition.
		e.dirs[e.partitionOf(k)].Insert(k)
	}
	nd.writeVers[i] = v
	atomic.AddUint64(&st.versionsCreated, 1)
	if e.cfg.GC {
		if head, n := chain.CollectReclaim(wmLookup()); n > 0 {
			atomic.AddUint64(&st.versionsCollected, uint64(n))
			if pool != nil {
				// Park the cut sublist until the retire epoch of this
				// batch drains; without a pool the sublist is simply
				// abandoned to the runtime's collector, as before.
				pool.Retire(head, batchSeq)
			}
		}
	}
}

// annotateRange fills nd.rangeRefs[r][w]: partition w's keys inside
// declared range r, each with its chain head at this point of the CC
// stream. Because worker w processes transactions in timestamp order and
// annotates before inserting nd's own placeholders, the head is exactly
// the newest version with Begin < nd.ts — the version a serializable scan
// at nd.ts must observe. Keys created by later-timestamped transactions
// are not yet in the directory, and keys created by earlier ones all are:
// the annotation is a phantom-free snapshot of the range by construction.
// (Keys reaped by this worker are equally consistent: reaping requires a
// tombstone below the watermark, which every transaction in this batch
// would have read as not-found anyway.)
//
// When the partition's key fences exclude the declared range outright the
// directory walk is skipped entirely — the annotation is the empty set by
// the same argument, since a fence admits every key inserted before this
// point of the CC stream. Otherwise the walk resumes the worker's
// persistent iterator, whose finger turns the per-range skiplist descent
// into an O(log distance) relocation.
func (e *Engine) annotateRange(w int, b *batch, nd *node, r int, it *storage.DirIter) {
	d := e.dirs[w]
	if d.ExcludesRange(nd.ranges[r]) {
		atomic.AddUint64(&e.ccStats[w].rangeFenceSkips, 1)
		nd.rangeRefs[r][w] = nil
		return
	}
	part := e.parts[w]
	var ents []rangeEntry
	pooled := b.ents != nil
	if pooled {
		ents = b.ents[w].take()
	}
	limit := nd.ranges[r].LimitKey()
	for ok := it.SeekGE(d, nd.ranges[r].FirstKey()); ok && it.Key().Less(limit); ok = it.Next() {
		if c := part.Get(it.Key()); c != nil {
			if h := c.Head(); h != nil {
				ents = append(ents, rangeEntry{k: it.Key(), v: h})
			}
		}
	}
	if pooled {
		ents = b.ents[w].commit(ents)
	}
	nd.rangeRefs[r][w] = ents
}

// ownedKeys reports how many of ks belong to partition w; used by tests to
// validate the partitioning function's balance.
func (e *Engine) ownedKeys(ks []txn.Key, w int) int {
	n := 0
	for _, k := range ks {
		if e.partitionOf(k) == w {
			n++
		}
	}
	return n
}
