package core

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"syscall"
	"testing"
	"time"

	"bohm/internal/txn"
	"bohm/internal/vfs"
	"bohm/internal/wal"
)

// The torture harness: a seeded sweep of randomized fault schedules, each
// replayable from its seed alone. Every schedule draws a fault kind
// (append error, fsync error with and without page drop, torn write,
// disk-full on rotation, checkpoint-path faults, directory-sync and
// repair-path faults), an arming point, a persistence class, a sync
// policy and a segment size, then drives the workload and asserts the
// durability trichotomy:
//
//   - acknowledged writes are never lost: recovery reproduces every call
//     that returned success;
//   - unacknowledged writes are never resurrected as committed: the
//     recovered state may exceed the acknowledged model only by a prefix
//     of the one call that returned ErrDurabilityLost (whose outcome is
//     contractually indeterminate), never by a definitely-rejected or
//     never-submitted call;
//   - a degraded engine keeps serving consistent reads of the
//     acknowledged state until it is torn down.
//
// CI runs the sweep with TORTURE_SEEDS=200; the default keeps local
// `go test` runs quick.

// tortureSeeds returns how many schedules to sweep.
func tortureSeeds(t *testing.T) int {
	if s := os.Getenv("TORTURE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad TORTURE_SEEDS %q", s)
		}
		return n
	}
	if testing.Short() {
		return 12
	}
	return 48
}

// tortureFault draws one fault rule. Truncate/remove/syncdir rules mostly
// matter when paired with a primary write/sync fault (they hit the repair
// and scrub paths), which the caller arranges by drawing up to two rules.
func tortureFault(rng *rand.Rand) vfs.Fault {
	count := 1 + rng.Intn(2) // transient: one or two firings
	if rng.Intn(2) == 0 {
		count = -1 // persistent
	}
	after := rng.Intn(10)
	switch rng.Intn(9) {
	case 0:
		return vfs.Fault{Op: vfs.OpWrite, Path: "wal-", After: after, Count: count}
	case 1:
		return vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: after, Count: count}
	case 2:
		return vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: after, Count: count, DropUnsynced: true}
	case 3:
		return vfs.Fault{Op: vfs.OpWrite, Path: "wal-", After: after, Count: count, Torn: 1 + rng.Intn(48)}
	case 4:
		// Disk full when rotation (or repair) creates a segment.
		return vfs.Fault{Op: vfs.OpCreate, Path: "wal-", After: after, Count: count, Err: syscall.ENOSPC}
	case 5:
		// Checkpoint write path: temp create/write/sync/rename.
		return vfs.Fault{Op: vfs.OpAny, Path: "ckpt", After: after, Count: count}
	case 6:
		return vfs.Fault{Op: vfs.OpTruncate, Path: "wal-", After: rng.Intn(2), Count: count}
	case 7:
		return vfs.Fault{Op: vfs.OpRemove, Path: "wal-", After: rng.Intn(2), Count: count}
	default:
		return vfs.Fault{Op: vfs.OpSyncDir, After: after, Count: count}
	}
}

func TestTortureSeededFaultSchedules(t *testing.T) {
	n := tortureSeeds(t)
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			tortureOneSchedule(t, int64(seed))
		})
	}
}

func tortureOneSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed*2654435761 + 0x7052))
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)

	cfg := durableConfig(dir)
	cfg.FS = fsys
	cfg.LogRetry = RetryPolicy{Attempts: 1 + rng.Intn(3), Backoff: 100 * time.Microsecond}
	cfg.CheckpointRetry = RetryPolicy{Attempts: 1 + rng.Intn(2), Backoff: 100 * time.Microsecond}
	switch rng.Intn(3) {
	case 0:
		cfg.SyncPolicy = wal.SyncEveryBatch
	default:
		cfg.SyncPolicy = wal.SyncByInterval
		cfg.SyncInterval = 200 * time.Microsecond
	}
	switch rng.Intn(3) {
	case 0:
		cfg.SegmentBytes = 512 // rotate roughly every record
	case 1:
		cfg.SegmentBytes = 4 << 10
	}

	reg := durRegistry()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			e.Kill()
		}
	}()
	loadInitial(t, e)
	if err := e.CheckpointNow(); err != nil {
		t.Fatalf("sealing loads: %v", err)
	}

	// Arm the schedule only after the load seal, so every run starts from
	// the same durable baseline.
	fsys.AddFault(tortureFault(rng))
	if rng.Intn(3) == 0 {
		fsys.AddFault(tortureFault(rng))
	}

	calls := 8 + rng.Intn(5)
	opsPerCall := 6 + rng.Intn(10)
	ckptAt := -1
	if rng.Intn(2) == 0 {
		ckptAt = rng.Intn(calls)
	}

	model := initialModel()
	var failOps []mutOp
	for i := 0; i < calls; i++ {
		ops := randOps(rng, opsPerCall)
		acked, durability, other := classifyCall(e.ExecuteBatch(opsTxns(t, reg, ops)))
		if other != nil {
			t.Fatalf("call %d: unexpected error class: %v", i, other)
		}
		if durability {
			failOps = ops
			break
		}
		if !acked {
			t.Fatalf("call %d: neither acknowledged nor durability-failed", i)
		}
		applyOps(model, ops, len(ops))
		if i == ckptAt {
			// A checkpoint in the middle of the schedule; it may fail (the
			// schedule can hit its temp file or its log truncation), which
			// must stay invisible to transaction outcomes.
			_ = e.CheckpointNow()
		}
	}

	if failOps != nil {
		// The ladder must be engaged, later writes refused, and reads must
		// serve the whole acknowledged state (failing-call keys excepted —
		// their durability is indeterminate).
		if h, cause := e.Health(); h != LogDegraded || cause == nil {
			t.Fatalf("durability error with Health = %v (cause %v)", h, cause)
		}
		probe := e.ExecuteBatch(opsTxns(t, reg, randOps(rng, 2)))
		for i, err := range probe {
			if !isDurabilityErr(err) {
				t.Fatalf("degraded probe slot %d = %v, want ErrDurabilityLost", i, err)
			}
		}
		tainted := make(map[txn.Key]bool)
		for _, o := range failOps {
			tainted[key(o.id)] = true
		}
		checkDegradedReads(t, e, model, tainted)
	}

	// Heal the disk, crash, recover. A healed directory must always
	// recover — losing acknowledged state to leftover repair debris would
	// be a durability bug, not an acceptable outcome.
	fsys.Clear()
	e.Kill()
	killed = true
	if h, _ := e.Health(); h != Closed {
		t.Fatalf("Health after Kill = %v, want Closed", h)
	}
	r, err := Recover(cfg, reg)
	if err != nil {
		t.Fatalf("Recover after heal: %v", err)
	}
	defer r.Close()
	if !matchesAnyPrefix(dumpState(r), model, failOps, cfg.BatchSize) {
		t.Fatalf("recovered state matches no acknowledged-prefix candidate (degraded=%v)", failOps != nil)
	}

	// The recovered engine is healthy and durable again.
	if h, cause := r.Health(); h != Healthy || cause != nil {
		t.Fatalf("recovered Health = %v (%v)", h, cause)
	}
	ops := randOps(rng, opsPerCall)
	if acked, _, other := classifyCall(r.ExecuteBatch(opsTxns(t, reg, ops))); !acked {
		t.Fatalf("recovered engine rejected a clean call: %v", other)
	}
}
