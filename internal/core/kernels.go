package core

// CC-phase kernels: the amortization machinery the concurrency control
// inner loop runs on unless Config.DisableCCKernels re-enables the
// per-key baseline.
//
//   - keyHashPart is the single partition-selection function. Every site
//     that routes a key to a partition (preprocessing, CC filtering, the
//     engine's partitionOf) goes through it, and it returns the hash it
//     computed so index probes can reuse it (Map.GetHashed and friends)
//     instead of re-running the finalizer per touch.
//   - ccMemo is a per-CC-worker, per-batch key→chain memo. Under zipfian
//     skew the same hot chain is probed hundreds of times per batch; the
//     memo replaces the DRAM-sized hash-table probe with a few loads from
//     a fixed 40KB table that stays cache-resident.
//   - workerSplit is the CC/exec goroutine split a batch is processed
//     under; the adaptive governor (governor.go) republishes it at batch
//     granularity.

import (
	"bohm/internal/storage"
	"bohm/internal/txn"
)

// keyHashPart routes key k to one of nparts hash partitions and returns
// the 64-bit hash it used. Partition selection uses the high hash bits;
// the per-partition hash index probes with the low bits (Map.GetHashed),
// so the two placements stay independent. This is the one place the
// partition function lives — preprocess.go and partitionOf must never
// diverge from it (pinned by TestPartitionSelectionShared).
func keyHashPart(k txn.Key, nparts int) (uint64, int) {
	h := k.Hash()
	return h, int((h >> 40) % uint64(nparts))
}

// Memo geometry: a power-of-two direct-mapped table with a short linear
// probe window. 1024 entries × 40 bytes ≈ 40KB per CC worker — small
// enough to stay L2-resident, large enough that a 1024-transaction batch
// of 10-key write-sets under heavy skew keeps its hot set memoized.
const (
	memoSlots = 1024
	memoMask  = memoSlots - 1
	memoProbe = 4
)

// memoEnt is one memo slot. epoch is the batch sequence the entry was
// written under: entries of any other epoch are dead, which is how the
// memo is cleared in O(1) at every batch boundary — no wipe pass, no
// allocation, and a chain pointer memoized in batch b can never be
// returned in batch b+1 (batch sequences are unique and monotone).
type memoEnt struct {
	h     uint64
	k     txn.Key
	ch    *storage.Chain
	epoch uint64
}

// ccMemo is one CC worker's private key→chain memo. Only that worker
// touches it, so there is no synchronization anywhere.
//
// Safety of caching *Chain for a whole batch: within a batch, the owning
// worker is its partitions' single writer; reap sweeps (the only operation
// that unbinds a key from its chain) run before any plan item of the batch
// is processed; and the hash table's compaction moves slots, never chains
// — so a key's chain mapping observed anywhere in the batch's CC step is
// the mapping for the entire step. A memoized nil records "key absent",
// which the write path upgrades in place when it creates the chain.
type ccMemo struct {
	ents [memoSlots]memoEnt
}

func newCCMemo() *ccMemo { return &ccMemo{} }

// get returns the memoized chain for (h, k) in the given epoch. The
// second result distinguishes a memoized absence (nil, true) from a miss
// (nil, false).
func (m *ccMemo) get(h uint64, k txn.Key, epoch uint64) (*storage.Chain, bool) {
	i := h & memoMask
	for j := uint64(0); j < memoProbe; j++ {
		e := &m.ents[(i+j)&memoMask]
		if e.epoch == epoch && e.h == h && e.k == k {
			return e.ch, true
		}
	}
	return nil, false
}

// put memoizes ch for (h, k) in the given epoch, preferring a dead slot
// (stale epoch) in the probe window and overwriting the home slot when
// the window is full of live entries.
func (m *ccMemo) put(h uint64, k txn.Key, ch *storage.Chain, epoch uint64) {
	i := h & memoMask
	slot := &m.ents[i]
	for j := uint64(0); j < memoProbe; j++ {
		e := &m.ents[(i+j)&memoMask]
		if e.epoch != epoch || (e.h == h && e.k == k) {
			slot = e
			break
		}
	}
	*slot = memoEnt{h: h, k: k, ch: ch, epoch: epoch}
}

// workerSplit is one assignment of the engine's worker budget to the two
// pipeline phases. The sequencer stamps the current assignment into every
// batch at flush time, so a split change is batch-atomic by construction:
// no batch is ever processed under two assignments, which is the
// "never migrates mid-batch" guarantee.
type workerSplit struct {
	cc   int // CC goroutines active; partition p is owned by worker p % cc
	exec int // execution goroutines active; node i striped to worker i % exec
}
