package core

import "bohm/internal/storage"

// The sequencer is BOHM's timestamp-assignment stage (§3.2.1): a single
// goroutine appends every incoming transaction to the logical transaction
// log. A transaction's timestamp is its position in the log, so timestamp
// assignment is an uncontended, counter-free operation.

// sequencer consumes submissions, wraps their transactions into nodes with
// consecutive timestamps, groups them into batches of cfg.BatchSize, and
// fans each batch out to every CC worker. Partial batches flush as soon as
// no submission is waiting, so small workloads are never stuck behind the
// batch size.
func (e *Engine) sequencer() {
	defer e.seqWG.Done()
	defer func() {
		for _, ch := range e.seqOut {
			close(ch)
		}
	}()

	// Timestamps start at 1: timestamp 0 is reserved for loaded data,
	// and batch sequence seqBase is the "nothing executed yet" GC
	// watermark (seqBase is 0 on a fresh engine; after recovery it
	// continues the previous epoch's numbering).
	nextTS := uint64(1)
	nextBatch := e.seqBase + 1
	cur := newBatch(nextBatch, e.cfg.BatchSize)

	flush := func() {
		if len(cur.nodes) == 0 {
			return
		}
		e.batches.Add(1)
		// Durability hook: append the batch to the command log before
		// fan-out. Under SyncEveryBatch this is also where the fsync
		// happens, so a batch entering the CC phase is already durable;
		// under the other policies the acknowledgement path waits on the
		// writer's durable mark instead. All submissions coalesced into
		// this batch share the one append (group commit).
		if e.logOn.Load() {
			e.logBatch(cur)
		}
		if e.trackTS {
			e.recordBatchTS(cur.seq, nextTS)
		}
		if e.cfg.Preprocess {
			cur.plans = make([][][]planItem, e.cfg.CCWorkers)
			for c := range cur.plans {
				cur.plans[c] = make([][]planItem, e.cfg.PreprocessWorkers)
			}
		}
		for _, ch := range e.seqOut {
			ch <- cur
		}
		nextBatch++
		cur = newBatch(nextBatch, e.cfg.BatchSize)
	}

	enqueue := func(sub *submission) {
		for i, t := range sub.txns {
			nd := &node{
				t:      t,
				ts:     nextTS,
				reads:  t.ReadSet(),
				writes: t.WriteSet(),
				ranges: t.RangeSet(),
				sub:    sub,
				idx:    sub.origIdx(i),
			}
			nextTS++
			// Slots are allocated here, before fan-out, because several
			// CC workers fill disjoint entries of the same slice
			// concurrently (intra-transaction parallelism, §3.2.2).
			if len(nd.writes) > 0 {
				nd.writeVers = make([]*storage.Version, len(nd.writes))
			}
			if len(nd.reads) > 0 && !e.cfg.DisableReadRefs {
				nd.readRefs = make([]*storage.Version, len(nd.reads))
			}
			if len(nd.ranges) > 0 && !e.cfg.DisableReadRefs {
				// rangeRefs[r][p]: every CC worker annotates its own
				// partition's slice of every declared range.
				nd.rangeRefs = make([][][]rangeEntry, len(nd.ranges))
				for r := range nd.rangeRefs {
					nd.rangeRefs[r] = make([][]rangeEntry, e.cfg.CCWorkers)
				}
			}
			cur.nodes = append(cur.nodes, nd)
			// The newest batch holding one of the submission's
			// transactions; the acknowledgement path waits for it to be
			// durable. Written before fan-out, read after completion.
			sub.lastBatch = cur.seq
			if len(cur.nodes) == e.cfg.BatchSize {
				flush()
			}
		}
	}

	for sub := range e.subCh {
		enqueue(sub)
		// Opportunistically drain whatever else is already queued, then
		// flush the partial batch so waiting submitters make progress.
	drain:
		for {
			select {
			case more, ok := <-e.subCh:
				if !ok {
					flush()
					return
				}
				enqueue(more)
			default:
				break drain
			}
		}
		flush()
	}
	flush()
}
