package core

import "bohm/internal/storage"

// The sequencer is BOHM's timestamp-assignment stage (§3.2.1): a single
// goroutine appends every incoming transaction to the logical transaction
// log. A transaction's timestamp is its position in the log, so timestamp
// assignment is an uncontended, counter-free operation.
//
// The sequencer is also the engine's allocator: with pooling on it owns
// the batch free list, drawing nodes and per-node slices from each batch's
// slab and arenas, and recycling retired batches once the watermark gate
// (retireLag) proves them unreachable. Keeping allocation and recycling on
// the one goroutine that already serializes admission makes the whole
// scheme lock-free.

// newBatch allocates a fresh batch — the cold path; pooled engines prefer
// recycled batches.
func (e *Engine) newBatch(seq uint64) *batch {
	b := &batch{seq: seq, nodes: make([]*node, 0, e.cfg.BatchSize)}
	if e.retireCh != nil {
		b.ents = make([]entArena, e.nparts)
	}
	return b
}

// sequencer consumes submissions, wraps their transactions into nodes with
// consecutive timestamps, groups them into batches of cfg.BatchSize, and
// fans each batch out to every CC worker. Partial batches flush as soon as
// no submission is waiting, so small workloads are never stuck behind the
// batch size.
func (e *Engine) sequencer() {
	defer e.seqWG.Done()
	defer func() {
		for _, ch := range e.seqOut {
			close(ch)
		}
	}()

	pooled := e.retireCh != nil
	// free and pending are the retire ring's sequencer side: pending holds
	// executed batches still inside the retireLag window, free holds
	// recycled ones ready for reuse. Plain locals — only this goroutine
	// touches them.
	var free, pending []*batch

	// recycle drains the retire ring and moves every batch past the
	// watermark gate onto the free list.
	recycle := func() {
	drain:
		for {
			select {
			case b := <-e.retireCh:
				pending = append(pending, b)
			default:
				break drain
			}
		}
		if len(pending) == 0 {
			return
		}
		wm := e.watermark()
		if wm <= retireLag {
			return
		}
		safe := wm - retireLag
		keep := pending[:0]
		for _, b := range pending {
			switch {
			case b.seq > safe:
				keep = append(keep, b)
			case len(free) < maxFreeBatches:
				e.arenaBytes.Add(b.resetForReuse())
				e.arenaBatches.Add(1)
				free = append(free, b)
			default:
				// Free list full: burst memory returns to the runtime.
			}
		}
		pending = keep
	}

	// acquire returns the next batch to fill, recycled when possible.
	acquire := func(seq uint64) *batch {
		if pooled {
			recycle()
			if n := len(free); n > 0 {
				b := free[n-1]
				free[n-1] = nil
				free = free[:n-1]
				b.seq = seq
				return b
			}
		}
		return e.newBatch(seq)
	}

	// Timestamps start at 1: timestamp 0 is reserved for loaded data,
	// and batch sequence seqBase is the "nothing executed yet" GC
	// watermark (seqBase is 0 on a fresh engine; after recovery it
	// continues the previous epoch's numbering).
	nextTS := uint64(1)
	nextBatch := e.seqBase + 1
	cur := acquire(nextBatch)

	// emit flushes cur unconditionally — including an empty batch, the
	// idle-tick case: a zero-node batch still runs every phase's
	// lifecycle (watermark advance, limbo release, reap sweep, trims)
	// and that lifecycle is exactly what an idle tick is for. flush, the
	// normal path, skips empties.
	var emit func()
	flush := func() {
		if len(cur.nodes) == 0 {
			return
		}
		emit()
	}
	emit = func() {
		cur.limitTS = nextTS
		if o := e.obs; o != nil {
			cur.obs.seq = o.now()
		}
		// Durability hook: append the batch to the command log before
		// fan-out. Under SyncEveryBatch this is also where the fsync
		// happens, so a batch entering the CC phase is already durable;
		// under the other policies the acknowledgement path waits on the
		// writer's durable mark instead. All submissions coalesced into
		// this batch share the one append (group commit).
		//
		// An append error means the writer exhausted its repair budget:
		// the batch was never logged, so it must never execute — recovery
		// replays only the log, and executing it here would expose state a
		// restart cannot reproduce. Degrade the engine, fail the batch's
		// transactions, and reuse the batch (same sequence) for whatever
		// comes next; batches.Add stays below the log hook so the batch
		// count never includes a dropped batch (waitQuiesce and the idle
		// loop compare it against the execution watermark).
		if e.logOn.Load() {
			logged := false
			if !e.degraded() {
				if err := e.logBatch(cur); err != nil {
					e.setDegraded(err)
				} else {
					logged = true
					if o := e.obs; o != nil {
						cur.obs.log = o.now()
					}
				}
			}
			if !logged && len(cur.nodes) > 0 {
				derr := e.durabilityLostError()
				for _, nd := range cur.nodes {
					// The submission's acknowledged-batch bump must not
					// run: this batch never executes, so raising the
					// recency floor to it would wedge later reads.
					nd.sub.noAck.Store(true)
					nd.sub.finish(nd.idx, derr)
				}
				nextTS = cur.limitTS - uint64(len(cur.nodes))
				_ = cur.resetForReuse()
				return
			}
			// A degraded empty batch (idle tick) proceeds unlogged: it
			// carries no transactions, so recovery is unaffected, and the
			// lifecycle work it drives keeps the degraded engine's read
			// side reclaiming.
		}
		e.batches.Add(1)
		if e.trackTS {
			e.recordBatchTS(cur.seq, nextTS)
		}
		// Stamp the CC/exec worker assignment the batch will be processed
		// under. Reading it once, here, is what makes a governor migration
		// batch-atomic: every stage of this batch sees the same split.
		cur.split = e.split.Load()
		if e.cfg.Preprocess {
			if e.cfg.DisableCCKernels {
				if cur.plans == nil {
					// Recycled batches keep their plan structure (resetForReuse
					// truncated the work lists); only fresh batches build it.
					cur.plans = make([][][]planItem, e.nparts)
					for c := range cur.plans {
						cur.plans[c] = make([][]planItem, e.cfg.PreprocessWorkers)
					}
				}
			} else if cur.ppOff == nil {
				// Kernel plan spine: per-worker offset and cursor rows. The
				// per-worker item slabs size themselves on first fill; all
				// of it survives recycling.
				pp := e.cfg.PreprocessWorkers
				cur.ppItems = make([][]planItem, pp)
				cur.ppOff = make([][]int32, pp)
				cur.ppCur = make([][]int32, pp)
				cur.ppNW = make([][]int32, pp)
				for j := 0; j < pp; j++ {
					cur.ppOff[j] = make([]int32, e.nparts+1)
					cur.ppCur[j] = make([]int32, e.nparts)
					cur.ppNW[j] = make([]int32, e.nparts)
				}
			}
		}
		for _, ch := range e.seqOut {
			ch <- cur
		}
		nextBatch++
		cur = acquire(nextBatch)
	}

	enqueue := func(sub *submission) {
		if e.logOn.Load() && e.degraded() {
			// The submission raced the ExecuteBatch health check and the
			// degradation. Fail it here, before it consumes timestamps.
			derr := e.durabilityLostError()
			sub.noAck.Store(true)
			for i := range sub.txns {
				sub.finish(sub.origIdx(i), derr)
			}
			return
		}
		for i, t := range sub.txns {
			// First stamp wins: submissions drain in arrival order, so the
			// batch's earliest-arrival stamp is the first one recorded into
			// it (a submission spanning a flush stamps the next batch too).
			if sub.obsT0 != 0 && cur.obs.submit == 0 {
				cur.obs.submit = sub.obsT0
			}
			var nd *node
			if pooled {
				nd = cur.newNode()
				// Full re-initialization: the slot may have carried a
				// transaction of an earlier epoch.
				nd.err = nil
				nd.state.Store(stUnprocessed)
			} else {
				nd = &node{}
			}
			nd.t = t
			nd.ts = nextTS
			nd.reads = t.ReadSet()
			nd.writes = t.WriteSet()
			nd.ranges = t.RangeSet()
			nd.writeVers, nd.readRefs, nd.rangeRefs = nil, nil, nil
			nd.sub = sub
			nd.idx = sub.origIdx(i)
			nextTS++
			// Slots are allocated here, before fan-out, because several
			// CC workers fill disjoint entries of the same slice
			// concurrently (intra-transaction parallelism, §3.2.2). With
			// pooling they are carved from the batch's arenas; arena
			// windows come back zeroed, which the CC phase relies on for
			// readRefs slots of never-written keys.
			if n := len(nd.writes); n > 0 {
				if pooled {
					nd.writeVers = cur.refs.carve(n)
				} else {
					nd.writeVers = make([]*storage.Version, n)
				}
			}
			if n := len(nd.reads); n > 0 && !e.cfg.DisableReadRefs {
				if pooled {
					nd.readRefs = cur.refs.carve(n)
				} else {
					nd.readRefs = make([]*storage.Version, n)
				}
			}
			if n := len(nd.ranges); n > 0 && !e.cfg.DisableReadRefs {
				// rangeRefs[r][p]: every CC worker annotates its own
				// partition's slice of every declared range.
				if pooled {
					nd.rangeRefs = cur.rangeSpines.carve(n)
					for r := range nd.rangeRefs {
						nd.rangeRefs[r] = cur.rangeRows.carve(e.nparts)
					}
				} else {
					nd.rangeRefs = make([][][]rangeEntry, n)
					for r := range nd.rangeRefs {
						nd.rangeRefs[r] = make([][]rangeEntry, e.nparts)
					}
				}
			}
			cur.nodes = append(cur.nodes, nd)
			// The newest batch holding one of the submission's
			// transactions; the acknowledgement path waits for it to be
			// durable. Written before fan-out, read after completion.
			sub.lastBatch = cur.seq
			if len(cur.nodes) == e.cfg.BatchSize {
				flush()
			}
		}
	}

	for sub := range e.subCh {
		if sub.tick {
			// Idle-reclamation tick. cur is always empty at the outer
			// receive (every path below flushes before looping back), so
			// this emits a pure-lifecycle empty batch.
			emit()
			continue
		}
		enqueue(sub)
		// Opportunistically drain whatever else is already queued, then
		// flush the partial batch so waiting submitters make progress.
	drain:
		for {
			select {
			case more, ok := <-e.subCh:
				if !ok {
					flush()
					return
				}
				if more.tick {
					// Real work is queued with it; the tick is moot.
					continue
				}
				enqueue(more)
			default:
				break drain
			}
		}
		flush()
	}
	flush()
}
