package core

// The read-only fast path: serializable snapshot reads that bypass the
// concurrency control pipeline.
//
// BOHM's multiversioning means a read-only transaction constrains nothing:
// it inserts no placeholders, supersedes no versions, and no later
// transaction ever waits on it. Sending it through the sequencer → CC →
// barrier → execution pipeline buys only a timestamp — which the execution
// watermark already provides for free. The fast path therefore diverts
// transactions with an empty declared write-set to a pool of snapshot-read
// workers that read the multiversion store directly at the watermark's
// timestamp boundary, a point at which every version is final:
//
//   - Snapshot: min over execution workers of execTS (the limit timestamp
//     of each worker's newest finished batch). Every batch below it has
//     fully executed, so every version with Begin < snapshot is installed
//     and immutable — reads never block, spin, or resolve producers. The
//     result is equivalent to serializing the transaction immediately
//     after the last completed batch; scans over the partition directories
//     at that boundary are phantom-free for the same reason pipeline scans
//     are (every key an earlier transaction will ever write is already in
//     the directory by the time its batch completes execution).
//
//   - Recency: before taking a snapshot, a worker waits until the
//     execution watermark covers ackedBatch — the newest batch containing
//     an acknowledged write. A read submitted after any ExecuteBatch
//     returned therefore observes that call's writes: the serialization
//     point respects real-time order across calls.
//
//   - Safety against reclamation: garbage collection cuts chain tails at
//     watermark(), and PR 3's recycling reuses versions and batch memory
//     retireLag batches later. Both derive their safe sequence from
//     Engine.watermark(), so readers protect themselves by publishing a
//     reader epoch — the batch sequence their snapshot was taken at — in a
//     per-worker slot that watermark() folds in as a cap. Publication uses
//     a store/re-check loop (see settleEpoch) so a concurrent GC pass that
//     missed the slot provably used a watermark at or below the published
//     epoch; versions visible at the snapshot are exactly the ones such
//     cuts keep linked. The write path gains no atomics: CC workers
//     already read watermark() once per batch, which now scans a handful
//     of additional slots.

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"bohm/internal/obs"
	"bohm/internal/storage"
	"bohm/internal/txn"
)

// ErrNotReadOnly is reported by ExecuteReadOnly for transactions whose
// declared write-set is not empty.
var ErrNotReadOnly = errors.New("bohm: ExecuteReadOnly requires an empty declared write-set")

// inactiveEpoch marks an idle reader-epoch slot; watermark() ignores it.
const inactiveEpoch = ^uint64(0)

// inlineROSlots is the number of claimable reader-epoch slots serving the
// inline Read API (callers beyond this many concurrent inline readers spin
// briefly for a free slot). Worker slots are separate and uncontended.
const inlineROSlots = 4

// roChunk is the fan-out grain of a diverted read-only set: ExecuteBatch
// slices its read-only transactions into chunks of this many and queues
// each separately, so one large submission parallelizes across the whole
// snapshot-read pool.
const roChunk = 64

// roJob is one chunk of diverted read-only transactions. It is sent by
// value — enqueueing allocates nothing.
type roJob struct {
	sub  *submission
	txns []txn.Txn
	// idxs maps chunk positions to result slots; nil means base+i.
	idxs []int
	base int
}

// enqueueReadOnly queues the diverted read-only transactions of one
// submission. The recency wait happens here, on the submitting goroutine
// (which blocks on the submission anyway), so the snapshot workers never
// stall: any job they pick up already has its recency bound below the
// execution watermark, and the watermark only advances.
//
// The chunk size adapts to the submission: at least roChunk (so queue and
// epoch overhead amortizes), but large submissions split into about four
// jobs per worker rather than hundreds, trading nothing on parallelism
// for far fewer channel hand-offs.
func (e *Engine) enqueueReadOnly(sub *submission, ts []txn.Txn, idxs []int) {
	e.waitRecent(sub.recency)
	chunk := len(ts) / (4 * e.cfg.ReadWorkers)
	if chunk < roChunk {
		chunk = roChunk
	}
	for off := 0; off < len(ts); off += chunk {
		end := off + chunk
		if end > len(ts) {
			end = len(ts)
		}
		job := roJob{sub: sub, txns: ts[off:end], base: off}
		if idxs != nil {
			job.idxs = idxs[off:end]
		}
		e.fastCh <- job
	}
}

// waitRecent blocks until the execution watermark covers target — the
// acknowledged-batch bound captured when the reader was submitted. Writes
// acknowledged later carry no visibility obligation, so the wait never
// chases an advancing ack frontier. Pure-read workloads never wait
// (ackedBatch is behind the watermark by construction); under a mixed
// load the wait is bounded by the same-batch stragglers of writes already
// executed when their submitter was woken.
func (e *Engine) waitRecent(target uint64) {
	for spins := 0; e.execWatermark() < target; spins++ {
		if spins > 64 {
			time.Sleep(5 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// settleEpoch completes reader-epoch publication for a slot the caller
// owns and has already stored wm (the execution watermark read just
// before) into. It re-publishes until the watermark is stable across the
// store, then returns the snapshot timestamp.
//
// Why the re-check makes the epoch safe: all the loads and stores involved
// are sequentially consistent, so a GC pass whose scan of the slot missed
// our store ordered that scan — and hence its earlier watermark read —
// before the store, and watermarks only advance; its cut therefore used a
// sequence at or below the wm our re-check observed unchanged. A pass that
// saw the store is capped by it directly. Either way no cut ever uses a
// sequence above the published epoch, and versions visible at the
// snapshot timestamp stay linked and unrecycled until the slot clears.
func (e *Engine) settleEpoch(slot *atomic.Uint64, wm uint64) uint64 {
	for {
		cur := e.execWatermark()
		if cur == wm {
			return e.snapshotTS()
		}
		wm = cur
		slot.Store(wm)
	}
}

// snapshotTS returns the fast path's snapshot timestamp: the minimum over
// execution workers of their published batch limit timestamps. Every
// version with Begin below it is installed and final. Each worker stores
// execTS before execBatch, so this minimum never lags the batch watermark
// an epoch was published at.
func (e *Engine) snapshotTS() uint64 {
	ts := e.execTS[0].Load()
	for i := 1; i < len(e.execTS); i++ {
		if t := e.execTS[i].Load(); t < ts {
			ts = t
		}
	}
	return ts
}

// waitSnapshotDurable gates fast-path result release on the command log:
// a snapshot at the execution watermark can include writes that executed
// but are not yet fsynced (SyncByInterval buffers them), and returning
// them would externalize state a crash rolls back — the pipelined read
// path never did (the acknowledgement gate orders every return after the
// durability of everything it observed, since the log is sequential).
// Must be called after the snapshot timestamp is computed: the watermark
// read here is then at or above the snapshot's batch. Under
// SyncEveryBatch and SyncNever the durable mark already covers every
// executed batch and this never blocks; under SyncByInterval it waits at
// most one group-commit interval.
//
// The return values implement the degraded-read ladder: cap is a
// timestamp ceiling for the snapshot (^0 when unconstrained) and err is
// non-nil only when the read cannot be served at all. On a LogDegraded
// engine the caller clamps its snapshot to min(snapshot, cap) — the
// frozen boundary of the last durable batch, kept materialized by the
// degradation GC pin — so every previously acknowledged write stays
// readable while nothing volatile is ever exposed. err is reserved for
// the corner where that boundary could not be frozen safely (see
// setDegraded); it wraps ErrDurabilityLost.
func (e *Engine) waitSnapshotDurable() (cap uint64, err error) {
	const unbounded = ^uint64(0)
	if !e.logOn.Load() {
		return unbounded, nil
	}
	wm := e.execWatermark()
	// Batches at or below the newest checkpoint are durable through the
	// checkpoint itself — the log may never mention them again (recovery
	// starts a fresh log above the recovered state, and checkpoints
	// truncate). Waiting on the writer for those would never return.
	floor := e.seqBase
	if ck := e.lastCkpt.Load(); ck > floor {
		floor = ck
	}
	if wm <= floor {
		return unbounded, nil
	}
	if e.degraded() {
		if ts := e.degradeTS.Load(); ts != 0 {
			return ts, nil
		}
		return 0, e.durabilityLostError()
	}
	if werr := e.wal.WaitDurable(wm); werr != nil {
		e.setDegraded(werr)
		if ts := e.degradeTS.Load(); ts != 0 {
			return ts, nil
		}
		return 0, e.durabilityLostError()
	}
	return unbounded, nil
}

// roWorker is one snapshot-read worker: it takes read-only chunks off the
// fast-path queue, establishes a protected snapshot per chunk, and runs
// the transactions against it. No step touches the sequencer, the CC
// partitions' write side, or the execution scheduler.
func (e *Engine) roWorker(w int) {
	defer e.roWG.Done()
	st := &e.roStats[w]
	slot := &e.roEpochs[w]
	c := &snapCtx{e: e, st: st}
	o := e.obs
	var t0 int64
	for job := range e.fastCh {
		if o != nil {
			t0 = o.now()
		}
		// No recency wait here: enqueueReadOnly waited on the submitter's
		// goroutine, and the watermark only advances, so the snapshot
		// below is already at or above the job's recency bound.
		wm := e.execWatermark()
		slot.Store(wm)
		c.ts = e.settleEpoch(slot, wm)
		aborted := uint64(0)
		failed := false
		if cap, derr := e.waitSnapshotDurable(); derr != nil {
			// The log failed and no durable snapshot could be frozen:
			// fail the whole chunk instead of exposing might-not-survive
			// state, mirroring the write path's non-durable commit
			// errors. An infrastructure failure, so the chunk counts
			// neither as committed nor as user aborts.
			failed = true
			derr = fmt.Errorf("bohm: read snapshot not durable: %w", derr)
			for i := range job.txns {
				idx := job.base + i
				if job.idxs != nil {
					idx = job.idxs[i]
				}
				job.sub.res[idx] = derr
			}
		} else {
			if cap < c.ts {
				// Degraded: serve at the frozen durable boundary. Every
				// acknowledged write is at or below it by the ack gate.
				c.ts = cap
			}
			for i, t := range job.txns {
				c.writeErr = nil
				err := txn.RunSafely(t, c)
				if err == nil && c.writeErr != nil {
					err = c.writeErr
				}
				if err != nil {
					aborted++
				}
				idx := job.base + i
				if job.idxs != nil {
					idx = job.idxs[i]
				}
				job.sub.res[idx] = err
			}
		}
		slot.Store(inactiveEpoch)
		// Accounting batches per job: one counter flush and one release
		// cover the whole chunk, keeping the per-read path free of atomic
		// read-modify-writes.
		n := uint64(len(job.txns))
		atomic.AddUint64(&st.roFastPath, n)
		if !failed {
			atomic.AddUint64(&st.committed, n-aborted)
			if aborted > 0 {
				atomic.AddUint64(&st.userAborts, aborted)
			}
		}
		c.flush()
		if o != nil {
			// One weighted record per job: every read in the chunk shares
			// the chunk's service latency.
			o.m.Stages[obs.StageRORead].RecordN(w, uint64(o.now()-t0), n)
		}
		job.sub.release(int64(n))
	}
}

// ExecuteReadOnly submits read-only transactions for serializable
// execution, like ExecuteBatch but with the write-set emptiness checked up
// front: transactions declaring writes are refused with ErrNotReadOnly
// (the rest proceed). With the fast path enabled every accepted
// transaction takes it; under DisableReadOnlyFastPath they run through the
// pipeline with identical results.
func (e *Engine) ExecuteReadOnly(ts []txn.Txn) []error {
	ok := true
	for _, t := range ts {
		if len(t.WriteSet()) > 0 {
			ok = false
			break
		}
	}
	if ok {
		return e.ExecuteBatch(ts)
	}
	res := make([]error, len(ts))
	valid := make([]txn.Txn, 0, len(ts))
	idxs := make([]int, 0, len(ts))
	for i, t := range ts {
		if n := len(t.WriteSet()); n > 0 {
			res[i] = fmt.Errorf("%w (got %d write keys)", ErrNotReadOnly, n)
			continue
		}
		valid = append(valid, t)
		idxs = append(idxs, i)
	}
	for i, err := range e.ExecuteBatch(valid) {
		res[idxs[i]] = err
	}
	return res
}

// Read performs a single serializable snapshot point read of k, observing
// every write acknowledged before the call. The value is copied into buf
// (grown if needed; pass nil to allocate) and returned; callers that
// recycle buf read with zero allocations. Returns txn.ErrNotFound if no
// record is visible. Read always serves from the protected snapshot —
// DisableReadOnlyFastPath switches only ExecuteBatch's diversion, so the
// result is the same either way (and durable engines need no Loggable
// wrapper for it: nothing here touches the command log).
func (e *Engine) Read(k txn.Key, buf []byte) ([]byte, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	o := e.obs
	var t0 int64
	if o != nil {
		t0 = o.now()
	}
	e.waitRecent(e.ackedBatch.Load())
	slot, st := e.claimROSlot()
	ts := e.settleEpoch(slot, slot.Load())
	cap, derr := e.waitSnapshotDurable()
	if derr != nil {
		slot.Store(inactiveEpoch)
		return nil, fmt.Errorf("bohm: read snapshot not durable: %w", derr)
	}
	if cap < ts {
		// Degraded: serve at the frozen durable boundary (see roWorker).
		ts = cap
	}
	data, steps, ok := e.snapshotRead(k, ts)
	if ok {
		// Copy before clearing the epoch: the version (and, with a future
		// payload arena, its bytes) is only pinned while the slot is
		// published.
		buf = append(buf[:0], data...)
	}
	slot.Store(inactiveEpoch)
	// One counter flush per read, after the epoch clears — no per-step
	// atomics on the shared stats line.
	if steps > 0 {
		atomic.AddUint64(&st.chainSteps, steps)
	}
	atomic.AddUint64(&st.roFastPath, 1)
	if o != nil {
		// Inline readers share the histogram shard past the worker shards;
		// its counters are atomic, so contention only costs cycles.
		o.m.Stages[obs.StageRORead].Record(e.cfg.ReadWorkers, uint64(o.now()-t0))
	}
	if !ok {
		return nil, txn.ErrNotFound
	}
	return buf, nil
}

// snapshotRead is the fast path's one visibility rule: the newest version
// of k with Begin below the snapshot timestamp, resolved as final. ok is
// false for missing records and tombstones alike. Both the inline Read
// API and snapCtx.Read go through here.
func (e *Engine) snapshotRead(k txn.Key, ts uint64) (data []byte, steps uint64, ok bool) {
	chain := e.chainFor(k)
	if chain == nil {
		return nil, 0, false
	}
	for v := chain.Head(); v != nil; v = v.Prev() {
		steps++
		if v.Begin < ts {
			data, tomb := resolveFinal(v)
			return data, steps, !tomb
		}
	}
	return nil, steps, false
}

// claimROSlot claims one of the inline reader-epoch slots, publishing the
// current execution watermark into it in the same CAS (so the slot is
// never observed claimed-but-unpublished). The caller must settleEpoch
// before reading and store inactiveEpoch when done.
func (e *Engine) claimROSlot() (*atomic.Uint64, *workerStats) {
	base := e.cfg.ReadWorkers
	for spins := 0; ; spins++ {
		for i := base; i < len(e.roEpochs); i++ {
			if e.roEpochs[i].CompareAndSwap(inactiveEpoch, e.execWatermark()) {
				return &e.roEpochs[i], &e.roStats[i]
			}
		}
		if spins > 64 {
			time.Sleep(5 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// resolveFinal returns the data of a version below the snapshot boundary.
// Such versions are always installed (their batch has fully executed); the
// Ready load doubles as the acquire edge for the data bytes.
func resolveFinal(v *storage.Version) (data []byte, tombstone bool) {
	for !v.Ready() {
		// Unreachable when the snapshot invariant holds; yielding (rather
		// than panicking) keeps a hypothetical violation visible as a
		// stall instead of corrupt data.
		runtime.Gosched()
	}
	return v.Data()
}

// snapCtx implements txn.Ctx against a fixed snapshot timestamp. Reads
// resolve finished versions only — no producer chasing, no suspension —
// and writes are refused exactly as the pipeline refuses writes outside
// the declared write-set (read-only transactions have none). The scan
// scratch is recycled across transactions, so steady-state fast-path reads
// allocate nothing.
type snapCtx struct {
	e  *Engine
	st *workerStats
	ts uint64

	// writeErr records a write attempt; the transaction aborts with it,
	// mirroring the pipeline's access-set enforcement bit for bit.
	writeErr error

	// chainSteps and fenceSkips tally locally; the owning worker flushes
	// them into st once per job so the per-read path performs no atomic
	// read-modify-writes.
	chainSteps uint64
	fenceSkips uint64

	// scratch backs ReadRange; nil until first use, detached during a
	// scan so nested scans fall back to fresh buffers.
	scratch *scanScratch
}

var _ txn.Ctx = (*snapCtx)(nil)

// scanScratch is a snapshot scan's reusable state: per-partition entry
// buffers and directory iterators, the merge-source list, and the loser
// tree. The iterators persist across scans as position hints — a repeat
// scan near the last one relocates in O(log distance) instead of paying a
// fresh skiplist descent per partition. Reuse is safe against the reaper:
// DirIter.SeekGE falls back to a full descent when any finger node has
// been removed, and a removal that lands after that check can only hide
// keys inserted after it — keys whose versions are all above this
// reader's snapshot timestamp (their batches had not finished executing
// when the snapshot was taken), hence never required.
type scanScratch struct {
	ents [][]rangeEntry
	srcs [][]rangeEntry
	its  []storage.DirIter
	lt   loserTree
}

// Read implements txn.Ctx: the value of the version visible at the
// snapshot timestamp.
func (c *snapCtx) Read(k txn.Key) ([]byte, error) {
	data, steps, ok := c.e.snapshotRead(k, c.ts)
	c.chainSteps += steps
	if !ok {
		return nil, txn.ErrNotFound
	}
	return data, nil
}

// ReadRange implements txn.Ctx: a serializable snapshot scan. The
// partition directories already hold every key any transaction below the
// snapshot boundary will ever write (directory inserts precede execution),
// so walking them at the snapshot timestamp is phantom-free by the same
// argument as pipeline scans; keys born above the boundary resolve no
// visible version and are skipped.
func (c *snapCtx) ReadRange(r txn.KeyRange, fn func(k txn.Key, v []byte) error) error {
	if r.Empty() {
		return nil
	}
	sc := c.scratch
	c.scratch = nil
	if sc == nil {
		sc = &scanScratch{
			ents: make([][]rangeEntry, len(c.e.parts)),
			its:  make([]storage.DirIter, len(c.e.parts)),
		}
	}
	err := c.scan(r, sc, fn)
	for i := range sc.srcs {
		sc.srcs[i] = nil
	}
	sc.srcs = sc.srcs[:0]
	for p := range sc.ents {
		clear(sc.ents[p]) // drop version references; the epoch is about to clear
		sc.ents[p] = sc.ents[p][:0]
	}
	c.scratch = sc
	return err
}

func (c *snapCtx) scan(r txn.KeyRange, sc *scanScratch, fn func(k txn.Key, v []byte) error) error {
	srcs := sc.srcs[:0]
	limit := r.LimitKey()
	for p := range c.e.parts {
		if c.e.dirs[p].ExcludesRange(r) {
			c.fenceSkips++
			continue
		}
		part := c.e.parts[p]
		ents := sc.ents[p][:0]
		it := &sc.its[p]
		for ok := it.SeekGE(c.e.dirs[p], r.FirstKey()); ok && it.Key().Less(limit); ok = it.Next() {
			if ch := part.Get(it.Key()); ch != nil {
				for v := ch.Head(); v != nil; v = v.Prev() {
					c.chainSteps++
					if v.Begin < c.ts {
						ents = append(ents, rangeEntry{k: it.Key(), v: v})
						break
					}
				}
			}
		}
		sc.ents[p] = ents
		if len(ents) > 0 {
			srcs = append(srcs, ents)
		}
	}
	sc.srcs = srcs
	lt := &sc.lt
	lt.init(srcs)
	for lt.ok() {
		ent := lt.pop()
		data, tomb := resolveFinal(ent.v)
		if tomb {
			continue
		}
		if err := fn(ent.k, data); err != nil {
			return err
		}
	}
	return nil
}

// flush moves the context's local tallies into the worker's shared stats.
func (c *snapCtx) flush() {
	if c.chainSteps > 0 {
		atomic.AddUint64(&c.st.chainSteps, c.chainSteps)
		c.chainSteps = 0
	}
	if c.fenceSkips > 0 {
		atomic.AddUint64(&c.st.rangeFenceSkips, c.fenceSkips)
		c.fenceSkips = 0
	}
}

// Write implements txn.Ctx: always an access-set violation on the fast
// path (diverted transactions declared no writes). The error text matches
// the pipeline's so the DisableReadOnlyFastPath ablation is bit-identical
// even for misbehaving transactions.
func (c *snapCtx) Write(k txn.Key, _ []byte) error { return c.refuseWrite(k) }

// Delete implements txn.Ctx; see Write.
func (c *snapCtx) Delete(k txn.Key) error { return c.refuseWrite(k) }

func (c *snapCtx) refuseWrite(k txn.Key) error {
	err := fmt.Errorf("bohm: write to key %+v outside declared write-set", k)
	if c.writeErr == nil {
		c.writeErr = err
	}
	return err
}
