package core

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bohm/internal/obs"
	"bohm/internal/txn"
)

// TestObsDisabledNil: with Config.Metrics off nothing is observable —
// the accessors return nil — and the pipeline runs exactly as before.
func TestObsDisabledNil(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 4)
	if e.Metrics() != nil {
		t.Error("Metrics() != nil with metrics disabled")
	}
	if e.FlightRecords() != nil {
		t.Error("FlightRecords() != nil with metrics disabled")
	}
	if e.DebugHandler() != nil {
		t.Error("DebugHandler() != nil with metrics disabled")
	}
	if e.DebugListenAddr() != "" {
		t.Error("DebugListenAddr() non-empty with metrics disabled")
	}
	for _, err := range e.ExecuteBatch([]txn.Txn{incTxn(0), incTxn(1)}) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := readCounter(t, e, 0); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}

// TestObsStageTimeline drives a durable engine and checks every stage of
// the batch timeline landed in its histogram, that per-transaction
// submit and read-path latencies were recorded, and that the flight
// recorder holds ordered, plausible lifecycle records.
func TestObsStageTimeline(t *testing.T) {
	reg := txn.NewRegistry()
	reg.Register("inc", func(args []byte) (txn.Txn, error) {
		return incTxn(txn.U64(args)), nil
	})
	cfg := DefaultConfig()
	cfg.Metrics = true
	cfg.LogDir = t.TempDir()
	// The exact-count assertions below need every sequenced batch to be a
	// test submission; keep the idle ticker's empty batches out.
	cfg.DisableIdleReap = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := uint64(0); i < 8; i++ {
		if err := e.Load(key(i), txn.NewValue(8, 0)); err != nil {
			t.Fatal(err)
		}
	}
	const calls = 10
	var writes uint64
	for c := 0; c < calls; c++ {
		ts := []txn.Txn{
			reg.MustCall("inc", txn.NewValue(8, uint64(c)%8)),
			reg.MustCall("inc", txn.NewValue(8, uint64(c+1)%8)),
		}
		writes += uint64(len(ts))
		for _, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	var sum uint64
	var rows int
	if res := e.ExecuteBatch([]txn.Txn{roSum([]txn.Key{key(0), key(1)}, &sum, &rows)}); res[0] != nil {
		t.Fatal(res[0])
	}
	if _, err := e.Read(key(0), nil); err != nil {
		t.Fatal(err)
	}

	m := e.Metrics()
	if m == nil {
		t.Fatal("Metrics() == nil with metrics enabled")
	}
	batches := e.Stats().Batches
	if batches == 0 {
		t.Fatal("no batches processed")
	}
	for _, s := range []obs.Stage{obs.StageSeqWait, obs.StageLogAppend, obs.StageCC, obs.StageBarrier, obs.StageExec} {
		snap := m.Stages[s].Snapshot()
		if snap.Count != batches {
			t.Errorf("stage %s count = %d, want %d (one per batch)", obs.StageName(s), snap.Count, batches)
		}
	}
	if got := m.Stages[obs.StageSubmit].Snapshot().Count; got != writes+1 {
		t.Errorf("submit count = %d, want %d (one per pipelined txn)", got, writes+1)
	}
	if got := m.Stages[obs.StageRORead].Snapshot().Count; got != 2 {
		t.Errorf("ro_read count = %d, want 2 (1 fast-path reader + 1 inline read)", got)
	}
	if got := m.Stages[obs.StageDurableWait].Snapshot().Count; got == 0 {
		t.Error("durable_wait never recorded on a durable engine")
	}

	recs := e.FlightRecords()
	if uint64(len(recs)) != batches {
		t.Fatalf("flight records = %d, want %d", len(recs), batches)
	}
	var prevSeq uint64
	for _, r := range recs {
		if r.Seq <= prevSeq {
			t.Fatalf("flight records out of order: %d after %d", r.Seq, prevSeq)
		}
		prevSeq = r.Seq
		if r.Txns <= 0 || r.Aborts != 0 {
			t.Errorf("record %d: txns=%d aborts=%d", r.Seq, r.Txns, r.Aborts)
		}
		if !(r.SubmitNS > 0 && r.SubmitNS <= r.SequencedNS &&
			r.SequencedNS <= r.LoggedNS && r.LoggedNS <= r.CCLastNS &&
			r.CCFirstNS > 0 && r.CCFirstNS <= r.CCLastNS &&
			r.CCLastNS <= r.ExecDoneNS) {
			t.Errorf("record %d stamps out of order: %+v", r.Seq, r)
		}
	}

	// Reset clears everything for a fresh measurement interval.
	m.Reset()
	if got := m.Stages[obs.StageSubmit].Snapshot().Count; got != 0 {
		t.Errorf("after reset submit count = %d", got)
	}
	if got := len(e.FlightRecords()); got != 0 {
		t.Errorf("after reset flight records = %d", got)
	}
}

// TestDebugEndpoint exercises the debug HTTP surface end to end: once
// through httptest against DebugHandler, and once over a real listener
// bound via Config.DebugAddr.
func TestDebugEndpoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DebugAddr = "127.0.0.1:0" // implies Metrics
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := uint64(0); i < 4; i++ {
		if err := e.Load(key(i), txn.NewValue(8, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 5; c++ {
		for _, err := range e.ExecuteBatch([]txn.Txn{incTxn(0), incTxn(1)}) {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	srv := httptest.NewServer(e.DebugHandler())
	defer srv.Close()
	addr := e.DebugListenAddr()
	if addr == "" {
		t.Fatal("DebugListenAddr empty with DebugAddr set")
	}
	get := func(base, path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return string(body)
	}

	for _, base := range []string{srv.URL, "http://" + addr} {
		metrics := get(base, "/metrics")
		for _, want := range []string{
			"bohm_committed_total",
			"bohm_batches_total",
			"bohm_sequencer_queue_depth",
			"bohm_exec_watermark",
			"bohm_stage_duration_seconds_bucket{stage=\"exec\",le=",
			"bohm_stage_duration_seconds_count{stage=\"submit\"}",
		} {
			if !strings.Contains(metrics, want) {
				t.Errorf("%s/metrics missing %q", base, want)
			}
		}

		var dump struct {
			EngineStart time.Time         `json:"engine_start"`
			Records     []obs.BatchRecord `json:"records"`
		}
		if err := json.Unmarshal([]byte(get(base, "/debug/flight")), &dump); err != nil {
			t.Fatalf("flight dump not JSON: %v", err)
		}
		if len(dump.Records) == 0 {
			t.Error("flight dump has no records")
		}
		if dump.EngineStart.IsZero() {
			t.Error("flight dump missing engine_start")
		}

		if vars := get(base, "/debug/vars"); !strings.Contains(vars, "memstats") {
			t.Error("/debug/vars missing memstats")
		}
		if idx := get(base, "/debug/pprof/"); !strings.Contains(idx, "goroutine") {
			t.Error("/debug/pprof/ index missing goroutine profile")
		}
		if prof := get(base, "/debug/pprof/goroutine?debug=1"); !strings.Contains(prof, "goroutine") {
			t.Error("goroutine profile empty")
		}
	}
}

// TestLastCheckpointError: a failing checkpoint attempt is retained and
// surfaced — through the accessor and the flight dump — and cleared by
// the next success.
func TestLastCheckpointError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GC = false // CheckpointNow without periodic checkpointing
	cfg.Metrics = true
	cfg.LogDir = t.TempDir()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Load(key(0), txn.NewValue(8, 0)); err != nil {
		t.Fatal(err)
	}
	if got := e.LastCheckpointError(); got != nil {
		t.Fatalf("initial LastCheckpointError = %v", got)
	}

	boom := errors.New("disk on fire")
	e.ckptHook = func() error { return boom }
	if err := e.CheckpointNow(); !errors.Is(err, boom) {
		t.Fatalf("CheckpointNow = %v, want injected error", err)
	}
	if got := e.LastCheckpointError(); !errors.Is(got, boom) {
		t.Fatalf("LastCheckpointError = %v, want injected error", got)
	}

	rec := httptest.NewRecorder()
	e.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	var dump struct {
		LastCheckpointError string `json:"last_checkpoint_error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.LastCheckpointError, "disk on fire") {
		t.Errorf("flight dump error = %q, want the injected cause", dump.LastCheckpointError)
	}

	e.ckptHook = nil
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if got := e.LastCheckpointError(); got != nil {
		t.Errorf("LastCheckpointError after success = %v, want nil", got)
	}
}

// TestObsStress interleaves pipeline traffic, fast-path reads and inline
// reads with concurrent metric scrapes, flight snapshots and resets —
// the -race coverage for every instrumentation site recording while
// aggregation runs (satellite of the flight-recorder test plan; pattern
// of TestReadOnlyFastPathStress).
func TestObsStress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = true
	cfg.BatchSize = 32
	cfg.FlightRecorderSize = 16 // small ring so snapshots race wrap-around
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const accounts = 32
	for i := uint64(0); i < accounts; i++ {
		if err := e.Load(key(i), txn.NewValue(8, 0)); err != nil {
			t.Fatal(err)
		}
	}
	allKeys := make([]txn.Key, accounts)
	for i := range allKeys {
		allKeys[i] = key(uint64(i))
	}

	const rounds = 150
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				a := (seed + uint64(r)) % accounts
				e.ExecuteBatch([]txn.Txn{incTxn(a), incTxn((a + 7) % accounts)})
			}
		}(uint64(s) * 17)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sum uint64
		var rows int
		for r := 0; r < rounds; r++ {
			e.ExecuteBatch([]txn.Txn{roSum(allKeys, &sum, &rows)})
			if _, err := e.Read(key(uint64(r)%accounts), nil); err != nil {
				t.Errorf("inline read: %v", err)
				return
			}
		}
	}()
	// Scrapers: Prometheus exposition, flight dumps, raw snapshots, and
	// periodic resets, all while the writers above are recording.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := e.DebugHandler()
			m := e.Metrics()
			for r := 0; r < 60; r++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
				for s := 0; s < obs.NumStages; s++ {
					m.Stages[s].Snapshot().Quantile(0.99)
				}
				e.FlightRecords()
				e.Stats()
				if g == 0 && r%20 == 19 {
					m.Reset()
				}
			}
		}(g)
	}
	wg.Wait()
}
