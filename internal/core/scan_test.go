package core

import (
	"testing"

	"bohm/internal/txn"
)

// TestLongScanUsesAnnotations: a 5,000-key read-only transaction must be
// served almost entirely from read references (§3.2.3 — the optimization
// behind the paper's Figure 8/9 win), and must observe a consistent
// snapshot while updates run before and after it in the same batch.
func TestLongScanUsesAnnotations(t *testing.T) {
	const nkeys = 5000
	cfg := DefaultConfig()
	cfg.BatchSize = 64
	cfg.Capacity = nkeys
	// The CC-time annotation is the machinery under test; keep the
	// read-only scan in the pipeline instead of the snapshot fast path.
	cfg.DisableReadOnlyFastPath = true
	e := newTestEngine(t, cfg, nkeys)

	keys := make([]txn.Key, nkeys)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	// Updates move one unit between adjacent keys (sum invariant 0).
	mkUpdate := func(i int) txn.Txn {
		a, b := keys[i%nkeys], keys[(i+1)%nkeys]
		return &txn.Proc{
			Reads:  []txn.Key{a, b},
			Writes: []txn.Key{a, b},
			Body: func(ctx txn.Ctx) error {
				va, err := ctx.Read(a)
				if err != nil {
					return err
				}
				vb, err := ctx.Read(b)
				if err != nil {
					return err
				}
				if err := ctx.Write(a, txn.NewValue(8, txn.U64(va)+1)); err != nil {
					return err
				}
				return ctx.Write(b, txn.NewValue(8, txn.U64(vb)-1))
			},
		}
	}
	var sum uint64
	scan := &txn.Proc{
		Reads: keys,
		Body: func(ctx txn.Ctx) error {
			s := uint64(0)
			for _, k := range keys {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				s += txn.U64(v)
			}
			sum = s
			return nil
		},
	}
	batch := make([]txn.Txn, 0, 201)
	for i := 0; i < 100; i++ {
		batch = append(batch, mkUpdate(i))
	}
	batch = append(batch, scan)
	for i := 100; i < 200; i++ {
		batch = append(batch, mkUpdate(i))
	}
	before := e.Stats()
	for i, err := range e.ExecuteBatch(batch) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if sum != 0 {
		t.Fatalf("scan sum = %d, want 0 (inconsistent snapshot)", int64(sum))
	}
	d := e.Stats().Sub(before)
	if d.ReadRefHits < nkeys {
		t.Errorf("readRefHits = %d, want >= %d (scan should be annotation-served)", d.ReadRefHits, nkeys)
	}
}

// TestOutOfOrderReads: a body that reads its declared read-set in reverse
// order still gets correct annotated versions (cursor fallback path).
func TestOutOfOrderReads(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 8)
	// Give each key a distinct value.
	seed := make([]txn.Txn, 8)
	for i := range seed {
		i := i
		seed[i] = &txn.Proc{Writes: []txn.Key{key(uint64(i))}, Body: func(ctx txn.Ctx) error {
			return ctx.Write(key(uint64(i)), txn.NewValue(8, uint64(i)*7+1))
		}}
	}
	for _, err := range e.ExecuteBatch(seed) {
		if err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]txn.Key, 8)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	var got [8]uint64
	reverse := &txn.Proc{
		Reads: keys,
		Body: func(ctx txn.Ctx) error {
			for i := 7; i >= 0; i-- {
				v, err := ctx.Read(keys[i])
				if err != nil {
					return err
				}
				got[i] = txn.U64(v)
			}
			// Read a key twice (stale cursor) for good measure.
			v, err := ctx.Read(keys[3])
			if err != nil {
				return err
			}
			if txn.U64(v) != got[3] {
				t.Error("repeated read differs")
			}
			return nil
		},
	}
	if res := e.ExecuteBatch([]txn.Txn{reverse}); res[0] != nil {
		t.Fatal(res[0])
	}
	for i, v := range got {
		if v != uint64(i)*7+1 {
			t.Errorf("key %d = %d, want %d", i, v, uint64(i)*7+1)
		}
	}
}

// TestUndeclaredReadFallsBackToChain: reading a key outside the declared
// read-set is legal in BOHM (only write-sets are mandatory) and traverses
// the version chain.
func TestUndeclaredReadFallsBackToChain(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 2)
	if res := e.ExecuteBatch([]txn.Txn{incTxn(1)}); res[0] != nil {
		t.Fatal(res[0])
	}
	var got uint64
	p := &txn.Proc{
		// Read-set declares only key 0; the body also reads key 1.
		Reads: []txn.Key{key(0)},
		Body: func(ctx txn.Ctx) error {
			if _, err := ctx.Read(key(0)); err != nil {
				return err
			}
			v, err := ctx.Read(key(1))
			if err != nil {
				return err
			}
			got = txn.U64(v)
			return nil
		},
	}
	before := e.Stats()
	if res := e.ExecuteBatch([]txn.Txn{p}); res[0] != nil {
		t.Fatal(res[0])
	}
	if got != 1 {
		t.Fatalf("undeclared read = %d, want 1", got)
	}
	if d := e.Stats().Sub(before); d.ChainSteps == 0 {
		t.Error("expected chain traversal for the undeclared read")
	}
}
