package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bohm/internal/txn"
	"bohm/internal/wal"
)

// Tests for the payload value arena and the idle reclamation tick: the
// DisableValueArena ablation must be invisible except in the allocation
// profile, slab recycling must never hand live payload bytes to a new
// writer (the -race stress test), and a quiescent engine must keep
// reclaiming — and stay recoverable — on idle ticks alone.

// arenaRegistry builds the arena stress workload: conserved-sum transfers
// whose values live in arena slabs, serializable scans that verify the
// invariant, oversize writes that take the heap-fallback path, deletes
// that feed the reaper, and aborts that resolve placeholders by
// copy-forward (a slab reference bump, not a byte copy).
const (
	arenaProc    = "varena.op"
	arenaKeys    = 64
	arenaTotal   = uint64(arenaKeys) * 100
	arenaBigIDs  = 32
	arenaBigSize = 9000 // above the arena's 8 KiB oversize cutoff

	arenaOpMove  = 0
	arenaOpScan  = 1
	arenaOpBig   = 2
	arenaOpDrop  = 3
	arenaOpAbort = 4
)

func arenaRegistry() *txn.Registry {
	reg := txn.NewRegistry()
	accounts := txn.KeyRange{Table: 0, Lo: 0, Hi: arenaKeys}
	reg.Register(arenaProc, func(args []byte) (txn.Txn, error) {
		if len(args) != 17 {
			return nil, fmt.Errorf("bad arena args: %d bytes", len(args))
		}
		a := binary.LittleEndian.Uint64(args)
		b := binary.LittleEndian.Uint64(args[8:])
		switch args[16] {
		case arenaOpScan:
			// A serializable scan over the transfer table: a payload handed
			// to a new writer while still visible here shows up as a torn
			// sum (or a race report, which is the mode CI runs under).
			return &txn.Proc{
				Ranges: []txn.KeyRange{accounts},
				Body: func(c txn.Ctx) error {
					sum, rows := uint64(0), 0
					err := c.ReadRange(accounts, func(_ txn.Key, v []byte) error {
						sum += txn.U64(v)
						rows++
						return nil
					})
					if err != nil {
						return err
					}
					if rows != arenaKeys || sum != arenaTotal {
						return fmt.Errorf("scan saw %d rows summing %d, want %d/%d", rows, sum, arenaKeys, arenaTotal)
					}
					return nil
				},
			}, nil
		case arenaOpBig:
			// Oversize write into the churn table: heap fallback, no slab.
			k := txn.Key{Table: 2, ID: a % arenaBigIDs}
			return &txn.Proc{
				Writes: []txn.Key{k},
				Body:   func(c txn.Ctx) error { return c.Write(k, txn.NewValue(arenaBigSize, a^b)) },
			}, nil
		case arenaOpDrop:
			// Churn-table delete: feeds the reaper, which must not free a
			// payload still visible to a concurrent scan or inline Read.
			k := txn.Key{Table: 2, ID: a % arenaBigIDs}
			return &txn.Proc{
				Writes: []txn.Key{k},
				Body:   func(c txn.Ctx) error { return c.Delete(k) },
			}, nil
		case arenaOpAbort:
			// Declared write that aborts: the placeholder resolves by
			// copy-forward, adopting the previous version's slab payload.
			ka := key(a % arenaKeys)
			return &txn.Proc{
				Reads:  []txn.Key{ka},
				Writes: []txn.Key{ka},
				Body:   func(c txn.Ctx) error { return txn.ErrAbort },
			}, nil
		default:
			// Conserved-sum transfer. The bodies reuse per-instance scratch
			// buffers through txn.IncrementedInto — the caller-buffer-reuse
			// contract the arena's copy-at-install is supposed to license —
			// so any engine retention of the staged slice corrupts the sum.
			ka, kb := key(a%arenaKeys), key(b%arenaKeys)
			if ka == kb {
				kb = key((b + 1) % arenaKeys)
			}
			var sa, sb []byte
			return &txn.Proc{
				Reads:  []txn.Key{ka, kb},
				Writes: []txn.Key{ka, kb},
				Body: func(c txn.Ctx) error {
					va, err := c.Read(ka)
					if err != nil {
						return err
					}
					vb, err := c.Read(kb)
					if err != nil {
						return err
					}
					sa = txn.IncrementedInto(sa, va, ^uint64(0)) // -1
					sb = txn.IncrementedInto(sb, vb, 1)
					if err := c.Write(ka, sa); err != nil {
						return err
					}
					return c.Write(kb, sb)
				},
			}, nil
		}
	})
	return reg
}

func arenaCall(t testing.TB, reg *txn.Registry, a, b uint64, op byte) txn.Txn {
	t.Helper()
	args := make([]byte, 17)
	binary.LittleEndian.PutUint64(args, a)
	binary.LittleEndian.PutUint64(args[8:], b)
	args[16] = op
	return reg.MustCall(arenaProc, args)
}

// TestValueArenaStress hammers payload-slab recycling: concurrent
// submitter streams mix scratch-reusing transfers, serializable scans,
// oversize writes, churn-table deletes (reaping) and aborts (copy-forward)
// over a small batch size with GC and periodic checkpointing on, while a
// separate goroutine performs inline snapshot Reads against the same
// chains. A slab freed while any of those readers could still reach a
// payload carved from it breaks a conserved sum, a length invariant — or
// trips the race detector, which is the mode CI runs this under.
func TestValueArenaStress(t *testing.T) {
	reg := arenaRegistry()
	cfg := DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 3
	cfg.BatchSize = 32
	cfg.Capacity = 1 << 14
	cfg.GC = true
	cfg.LogDir = t.TempDir()
	cfg.SyncPolicy = wal.SyncNever
	cfg.CheckpointEveryBatches = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for id := uint64(0); id < arenaKeys; id++ {
		if err := e.Load(key(id), txn.NewValue(16, 100)); err != nil {
			t.Fatal(err)
		}
	}

	// Inline reader: epoch-pinned point reads race the CC-side releases
	// directly. Account records always exist; churn-table records are
	// either a full oversize record or absent, never anything else.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var buf []byte
		x := uint64(0x9e3779b97f4a7c15)
		for {
			select {
			case <-stop:
				return
			default:
			}
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if x&1 == 0 {
				v, err := e.Read(key(x%arenaKeys), buf)
				if err != nil {
					t.Errorf("inline read of account: %v", err)
					return
				}
				if len(v) < 8 {
					t.Errorf("inline read returned %d bytes", len(v))
					return
				}
				buf = v
			} else {
				v, err := e.Read(txn.Key{Table: 2, ID: x % arenaBigIDs}, buf)
				if err != nil && err != txn.ErrNotFound {
					t.Errorf("inline read of churn key: %v", err)
					return
				}
				if err == nil {
					if len(v) != arenaBigSize {
						t.Errorf("churn record has %d bytes, want %d", len(v), arenaBigSize)
						return
					}
					buf = v
				}
			}
		}
	}()

	const (
		streams = 4
		rounds  = 120
		perSub  = 24
	)
	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*2654435761 + 1
			next := func() uint64 {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return x
			}
			for r := 0; r < rounds; r++ {
				ts := make([]txn.Txn, perSub)
				for i := range ts {
					switch next() % 8 {
					case 0:
						ts[i] = arenaCall(t, reg, next(), next(), arenaOpScan)
					case 1:
						ts[i] = arenaCall(t, reg, next(), next(), arenaOpBig)
					case 2:
						ts[i] = arenaCall(t, reg, next(), next(), arenaOpDrop)
					case 3:
						ts[i] = arenaCall(t, reg, next(), next(), arenaOpAbort)
					default:
						ts[i] = arenaCall(t, reg, next(), next(), arenaOpMove)
					}
				}
				for i, err := range e.ExecuteBatch(ts) {
					if err != nil && !errors.Is(err, txn.ErrAbort) {
						errCh <- fmt.Errorf("stream %d round %d txn %d: %w", seed, r, i, err)
						return
					}
				}
			}
		}(uint64(s))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Drive single-transaction batches until every arena mechanism has
	// provably engaged: a full slab drained back to the free list, dead
	// churn keys reaped, and checkpoints written over arena-held payloads.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := e.Stats()
		if st.ValueSlabsRecycled > 0 && st.KeysReaped > 0 && st.Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("arena machinery did not engage: slabs=%d reaped=%d checkpoints=%d",
				st.ValueSlabsRecycled, st.KeysReaped, st.Checkpoints)
		}
		if res := e.ExecuteBatch([]txn.Txn{arenaCall(t, reg, 1, 2, arenaOpMove)}); res[0] != nil {
			t.Fatal(res[0])
		}
	}
	close(stop)
	readerWG.Wait()

	if st := e.Stats(); st.UserAborts == 0 {
		t.Error("no aborts ran: the copy-forward path was not exercised")
	}
	// Final consistency check from outside the pipeline.
	sum := uint64(0)
	for k, v := range dumpState(e) {
		if k.Table == 0 {
			sum += v
		}
	}
	if sum != arenaTotal {
		t.Errorf("final account sum = %d, want %d", sum, arenaTotal)
	}
}

// TestDisableValueArenaIdenticalResults runs the durability suite's
// deterministic mixed workload against an arena-backed and an
// arena-disabled engine and requires per-transaction outcomes and final
// states to match exactly: where payload bytes live must be invisible
// except in the allocation profile.
func TestDisableValueArenaIdenticalResults(t *testing.T) {
	run := func(disable bool) ([]string, map[txn.Key]uint64) {
		reg := durRegistry()
		cfg := DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 2
		cfg.BatchSize = 64
		cfg.Capacity = 1 << 12
		cfg.DisableValueArena = disable
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		loadInitial(t, e)
		var outcomes []string
		for i := 0; i < 60; i++ {
			for _, err := range e.ExecuteBatch(workloadBatch(t, reg, i)) {
				if err == nil {
					outcomes = append(outcomes, "commit")
				} else {
					outcomes = append(outcomes, err.Error())
				}
			}
		}
		return outcomes, dumpState(e)
	}

	arenaRes, arenaState := run(false)
	plainRes, plainState := run(true)
	if len(arenaRes) != len(plainRes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(arenaRes), len(plainRes))
	}
	for i := range arenaRes {
		if arenaRes[i] != plainRes[i] {
			t.Fatalf("txn %d: arena %q vs DisableValueArena %q", i, arenaRes[i], plainRes[i])
		}
	}
	sameState(t, "arena vs DisableValueArena", arenaState, plainState)
}

// TestIdleReapDrain checks the idle reclamation tick end to end: a block
// of keys is inserted and tombstoned, submissions stop, and the directory
// must still drain to empty — the ticker's empty batches are the only
// thing advancing the watermark and running reap sweeps. The ablation arm
// checks the knob: with DisableIdleReap no tick ever fires and a quiescent
// engine's directory stops changing.
func TestIdleReapDrain(t *testing.T) {
	const side = 96
	build := func(disable bool) *Engine {
		cfg := DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 2
		cfg.BatchSize = 128 // both submissions land as single batches
		cfg.Capacity = 1 << 12
		cfg.GC = true
		cfg.DisableIdleReap = disable
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		puts := make([]txn.Txn, side)
		dels := make([]txn.Txn, side)
		for i := range puts {
			k := txn.Key{Table: 1, ID: uint64(i)}
			puts[i] = &txn.Proc{
				Writes: []txn.Key{k},
				Body:   func(c txn.Ctx) error { return c.Write(k, txn.NewValue(16, 1)) },
			}
			dels[i] = &txn.Proc{
				Writes: []txn.Key{k},
				Body:   func(c txn.Ctx) error { return c.Delete(k) },
			}
		}
		for _, res := range [][]error{e.ExecuteBatch(puts), e.ExecuteBatch(dels)} {
			for _, err := range res {
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		return e
	}

	e := build(false)
	defer e.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := e.Stats()
		if e.DirectoryEntries() == 0 && st.IdleTicks > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle reap did not drain: %d entries, %d ticks", e.DirectoryEntries(), st.IdleTicks)
		}
		time.Sleep(time.Millisecond)
	}
	if reaped := e.Stats().KeysReaped; reaped < side {
		t.Errorf("reaped %d keys, want at least %d", reaped, side)
	}

	d := build(true)
	defer d.Close()
	// Give any in-flight lifecycle work time to settle, then require a
	// quiescent engine to be genuinely inert: no ticks, nothing moving.
	time.Sleep(100 * time.Millisecond)
	entries := d.DirectoryEntries()
	time.Sleep(200 * time.Millisecond)
	if got := d.DirectoryEntries(); got != entries {
		t.Errorf("disabled idle reap still reclaiming: %d entries then %d", entries, got)
	}
	if ticks := d.Stats().IdleTicks; ticks != 0 {
		t.Errorf("DisableIdleReap engine recorded %d idle ticks", ticks)
	}
}

// TestIdleTicksDurableRecovery checks that the ticker's empty batches are
// sound in the command log: they append (and sync) as zero-transaction
// records, and recovery replays them as no-ops — twice, so the second
// epoch's log also starts above a tick tail.
func TestIdleTicksDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := durRegistry()
	e, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	loadInitial(t, e)
	if err := e.CheckpointNow(); err != nil {
		t.Fatalf("sealing loads: %v", err)
	}

	// waitTicks blocks until the idle ticker has appended at least one
	// empty batch past base — all log growth after the last ExecuteBatch
	// returned is ticks.
	waitTicks := func(e *Engine, label string, base uint64) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st := e.Stats()
			if st.IdleTicks > 0 && st.LogBatches > base {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: no logged idle ticks (ticks=%d, log %d -> %d)", label, st.IdleTicks, base, st.LogBatches)
			}
			time.Sleep(time.Millisecond)
		}
	}

	for i := 0; i < 6; i++ {
		e.ExecuteBatch(workloadBatch(t, reg, i))
	}
	base := e.Stats().LogBatches
	want := dumpState(e)
	waitTicks(e, "first epoch", base)
	e.Kill()

	r, err := Recover(durableConfig(dir), reg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	sameState(t, "recovered past idle ticks", dumpState(r), want)

	// The recovered engine keeps working, keeps ticking, and recovers
	// again with the new tick tail in its log.
	r.ExecuteBatch(workloadBatch(t, reg, 100))
	base = r.Stats().LogBatches
	after := dumpState(r)
	waitTicks(r, "second epoch", base)
	r.Kill()

	r2, err := Recover(durableConfig(dir), reg)
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	defer r2.Close()
	sameState(t, "re-recovered", dumpState(r2), after)
}
