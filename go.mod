module bohm

go 1.23
