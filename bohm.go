// Package bohm is a production-quality Go implementation of BOHM, the
// serializable multiversion concurrency control protocol of Faleiro &
// Abadi, "Rethinking serializable multiversion concurrency control"
// (VLDB 2015), together with the four baselines the paper evaluates
// against: Hekaton-style optimistic MVCC, Snapshot Isolation, Silo-style
// single-version OCC, and deadlock-free two-phase locking.
//
// # Model
//
// Transactions are stored procedures with declared access sets: the
// write-set must cover every key the transaction may write (BOHM plans
// version placement before execution), and the read-set enables BOHM's
// read-reference optimization. A transaction's logic runs against a Ctx
// and may be re-executed, so it must be deterministic given its reads.
//
//	eng, _ := bohm.New(bohm.DefaultConfig())
//	defer eng.Close()
//	eng.Load(bohm.Key{Table: 0, ID: 1}, bohm.NewValue(8, 100))
//
//	k := bohm.Key{Table: 0, ID: 1}
//	res := eng.ExecuteBatch([]bohm.Txn{&bohm.Proc{
//		Reads:  []bohm.Key{k},
//		Writes: []bohm.Key{k},
//		Body: func(ctx bohm.Ctx) error {
//			v, err := ctx.Read(k)
//			if err != nil {
//				return err
//			}
//			return ctx.Write(k, bohm.Incremented(v, 1))
//		},
//	}})
//
// ExecuteBatch is serializable on every engine; on BOHM the equivalent
// serial order is exactly the submission order.
//
// # Range scans
//
// The store is a two-tier index: a per-partition hash map for point access
// plus an ordered key directory maintained by the concurrency control
// phase. A transaction may declare KeyRanges (Txn.RangeSet) and scan them
// with Ctx.ReadRange; on BOHM the scan is phantom-free by construction —
// every key any earlier transaction will ever write has its placeholder
// and directory entry inserted before execution begins — and a declared
// range is annotated at CC time with resolved version references, so the
// scan touches no version chains at all. The baselines implement ReadRange
// with their own idioms (2PL: planned table locks; OCC and Hekaton:
// commit-time range revalidation; SI: snapshot reads), so all five engines
// are comparable on scan workloads:
//
//	scan := &bohm.Proc{
//		Ranges: []bohm.KeyRange{{Table: 0, Lo: 100, Hi: 200}},
//		Body: func(ctx bohm.Ctx) error {
//			return ctx.ReadRange(bohm.KeyRange{Table: 0, Lo: 100, Hi: 200},
//				func(k bohm.Key, v []byte) error { sum += bohm.U64(v); return nil })
//		},
//	}
//
// Deleted keys do not haunt the index: once a key's newest surviving
// version is a tombstone below the execution watermark, BOHM's index
// lifecycle reaps it — the directory entry, the hash slot and the whole
// version chain are reclaimed under the same epoch discipline that
// protects lock-free readers — so directories and scans track the live
// working set even under insert/delete churn (queues, sessions,
// TTL-style tables). Config.DisableReaping restores the insert-only
// behaviour for ablation.
//
// # Read-only fast path
//
// A transaction with an empty declared write-set never enters the
// pipeline: ExecuteBatch diverts it to a pool of snapshot-read workers
// that read the multiversion store at the execution watermark — a
// boundary at which every version is final — with a reader-epoch scheme
// keeping those versions safe from garbage collection and memory
// recycling for the duration. The result is serializable (equivalent to
// serializing the transaction immediately after the last completed
// batch) and recent (every write acknowledged before the submission is
// observed). ExecuteReadOnly validates and submits read-only batches,
// and Engine.Read serves a single zero-allocation point read:
//
//	val, err := eng.Read(bohm.Key{Table: 0, ID: 1}, buf) // buf reused across calls
//
// Read-only transactions mixed into a writing ExecuteBatch call
// serialize at the snapshot, before that call's writes; set
// Config.DisableReadOnlyFastPath to pipeline them like any other
// transaction instead.
//
// # Engines
//
// New creates a BOHM engine (the paper's contribution); NewHekaton,
// NewSnapshotIsolation, NewOCC and New2PL create the baselines. All five
// implement Engine and are interchangeable.
//
// # Durability
//
// The BOHM engine optionally persists its state with Calvin-style command
// logging. The determinism argument: BOHM's equivalent serial order is
// exactly the submission order (timestamps are log positions assigned by
// a single sequencer), and transaction logic is required to be
// deterministic given its reads — so the database state after any prefix
// of the transaction log is a pure function of that prefix. Logging the
// inputs (one record per batch: each transaction's procedure id, argument
// bytes and access sets) and re-executing them in order therefore
// reproduces the lost state exactly, with no per-version redo/undo and no
// read/write logging on the execution path.
//
// Closures cannot be serialized, so durable engines require transactions
// built through a Registry, which binds a procedure id to a factory and
// yields Loggable transactions:
//
//	reg := bohm.NewRegistry()
//	reg.Register("transfer", func(args []byte) (bohm.Txn, error) { ... })
//
//	cfg := bohm.DefaultConfig()
//	cfg.LogDir = "data"
//	cfg.CheckpointEveryBatches = 1024
//	eng, _ := bohm.Recover(cfg, reg) // opens or creates the database
//	eng.Load(...)                    // first run only
//	eng.CheckpointNow()              // seal bulk loads into a checkpoint
//	eng.ExecuteBatch([]bohm.Txn{reg.MustCall("transfer", args)})
//
// ExecuteBatch acknowledges only durable batches: under the default
// wal.SyncEveryBatch policy the sequencer fsyncs each batch before it
// enters concurrency control (group commit comes free, since all waiting
// submissions coalesce into one batch); wal.SyncByInterval bounds the
// fsync rate instead and completions wait for the covering sync.
//
// A background checkpointer (Config.CheckpointEveryBatches) exploits the
// multiversion store to snapshot the database at a batch watermark while
// execution continues — chains are simply read at the watermark's
// timestamp boundary — then truncates the log below the checkpoint.
// Recover loads the newest checkpoint, deterministically replays the
// remaining log (discarding a torn tail left by a crash mid-append), and
// resumes logging.
//
// # Observability
//
// Config.Metrics turns on the BOHM engine's flight recorder: per-stage
// latency histograms over every batch's pipeline timeline (sequencer
// wait, log append, concurrency control, barrier, execution, durable
// wait), per-transaction submission and fast-path read latency, and a
// ring buffer of recent batch lifecycle records. Instrumentation is
// allocation-free — worker-sharded fixed-size histograms and a seqlock
// ring — so the hot path keeps its zero-allocations-per-transaction
// budget with metrics on. Config.DebugAddr (which implies Metrics)
// serves the numbers over HTTP: Prometheus text on /metrics, a JSON
// dump of recent batches on /debug/flight, plus expvar and net/http/pprof:
//
//	cfg := bohm.DefaultConfig()
//	cfg.DebugAddr = "127.0.0.1:7788"
//	eng, _ := bohm.New(cfg)
//	// curl localhost:7788/metrics ; curl localhost:7788/debug/flight
//
// Programmatic access: Engine.Metrics (histograms), Engine.FlightRecords
// (recent batches), Engine.DebugHandler (the same HTTP surface for
// mounting into an existing server), Engine.LastCheckpointError.
package bohm

import (
	"bohm/internal/core"
	"bohm/internal/engine"
	"bohm/internal/hekaton"
	"bohm/internal/obs"
	"bohm/internal/occ"
	"bohm/internal/si"
	"bohm/internal/twopl"
	"bohm/internal/txn"
	"bohm/internal/wal"
)

// Key identifies a record: a table number and a 64-bit row id.
type Key = txn.Key

// KeyRange identifies a half-open interval [Lo, Hi) of row ids within one
// table, the unit of declaration for serializable range scans.
type KeyRange = txn.KeyRange

// Txn is a stored-procedure transaction with declared access sets.
type Txn = txn.Txn

// Ctx is the data-access interface handed to transaction logic.
type Ctx = txn.Ctx

// Proc builds a Txn from closures.
type Proc = txn.Proc

// Engine is the interface all five engines implement.
type Engine = engine.Engine

// Stats is an engine's counter snapshot.
type Stats = engine.Stats

// ErrNotFound is returned by Ctx.Read for records with no visible version.
var ErrNotFound = txn.ErrNotFound

// ErrAbort is a convenience sentinel for aborting a transaction.
var ErrAbort = txn.ErrAbort

// ErrDuplicateWriteKey is reported for a transaction whose declared
// write-set repeats a key; BOHM rejects it at submission (each write-set
// entry allocates one version, and a duplicate would deadlock on itself).
var ErrDuplicateWriteKey = core.ErrDuplicateWriteKey

// ErrNotReadOnly is reported by the BOHM engine's ExecuteReadOnly for
// transactions whose declared write-set is not empty.
var ErrNotReadOnly = core.ErrNotReadOnly

// Config parameterizes the BOHM engine; see the field documentation in
// the internal core package.
type Config = core.Config

// DefaultConfig returns a small general-purpose BOHM configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// New starts a BOHM engine.
func New(cfg Config) (*core.Engine, error) { return core.New(cfg) }

// Durability API: command logging, checkpoints and crash recovery for the
// BOHM engine. See the package documentation's Durability section.

// Registry maps procedure ids to transaction factories; durable engines
// require registry-built (Loggable) transactions.
type Registry = txn.Registry

// NewRegistry creates an empty procedure registry.
func NewRegistry() *Registry { return txn.NewRegistry() }

// Loggable is a transaction that can be recorded in the command log.
type Loggable = txn.Loggable

// SyncPolicy selects when the command log is fsynced.
type SyncPolicy = wal.SyncPolicy

// The available log sync policies.
const (
	// SyncEveryBatch (the default) fsyncs before acknowledging each batch.
	SyncEveryBatch = wal.SyncEveryBatch
	// SyncByInterval group-commits on Config.SyncInterval.
	SyncByInterval = wal.SyncByInterval
	// SyncNever leaves flushing to the OS page cache.
	SyncNever = wal.SyncNever
)

// ErrNotLoggable is reported when a durable engine is handed a
// transaction that was not built through a Registry.
var ErrNotLoggable = core.ErrNotLoggable

// ErrDurabilityLost is reported (wrapped with the storage error) for
// every transaction refused because the engine is LogDegraded: the
// command log failed beyond its repair budget, so new work cannot be
// made durable. Previously acknowledged writes remain readable. See
// Engine.Health.
var ErrDurabilityLost = core.ErrDurabilityLost

// Health is the BOHM engine's position on the durability degradation
// ladder, reported by Engine.Health: Healthy → LogDegraded (storage
// failed beyond Config.LogRetry; writes fail fast with
// ErrDurabilityLost while reads keep serving the last durable snapshot)
// → Closed.
type Health = core.Health

// The health ladder's rungs.
const (
	Healthy     = core.Healthy
	LogDegraded = core.LogDegraded
	Closed      = core.Closed
)

// RetryPolicy bounds the durability subsystem's retry/backoff loops
// (Config.LogRetry for write-hole repair of the command log,
// Config.CheckpointRetry for checkpoint attempts).
type RetryPolicy = core.RetryPolicy

// Recover rebuilds a BOHM engine from the durable state in cfg.LogDir:
// newest checkpoint plus deterministic replay of the logged batches above
// it. On an empty directory it degenerates to New, so applications can
// call it unconditionally at startup. reg must hold every procedure id
// that appears in the log.
func Recover(cfg Config, reg *Registry) (*core.Engine, error) { return core.Recover(cfg, reg) }

// HekatonConfig parameterizes the Hekaton and Snapshot Isolation engines.
type HekatonConfig = hekaton.Config

// DefaultHekatonConfig returns a small general-purpose configuration.
func DefaultHekatonConfig() HekatonConfig { return hekaton.DefaultConfig() }

// NewHekaton creates the optimistic serializable multiversion baseline
// (Larson et al.), with its global timestamp counter and commit
// dependencies.
func NewHekaton(cfg HekatonConfig) (Engine, error) {
	cfg.Level = hekaton.Serializable
	return hekaton.New(cfg)
}

// NewSnapshotIsolation creates the snapshot isolation baseline: the
// Hekaton codebase without read validation. Not serializable.
func NewSnapshotIsolation(cfg HekatonConfig) (Engine, error) { return si.New(cfg) }

// OCCConfig parameterizes the single-version OCC engine.
type OCCConfig = occ.Config

// DefaultOCCConfig returns a small general-purpose configuration.
func DefaultOCCConfig() OCCConfig { return occ.DefaultConfig() }

// NewOCC creates the Silo-style single-version optimistic baseline.
func NewOCC(cfg OCCConfig) (Engine, error) { return occ.New(cfg) }

// TwoPLConfig parameterizes the two-phase locking engine.
type TwoPLConfig = twopl.Config

// DefaultTwoPLConfig returns a small general-purpose configuration.
func DefaultTwoPLConfig() TwoPLConfig { return twopl.DefaultConfig() }

// New2PL creates the deadlock-free two-phase locking baseline.
func New2PL(cfg TwoPLConfig) (Engine, error) { return twopl.New(cfg) }

// Observability types re-exported from the obs subsystem; see the
// package documentation's Observability section.

// Metrics is the BOHM engine's observability surface: per-stage latency
// histograms and the batch flight recorder. Engine.Metrics returns nil
// unless Config.Metrics (or DebugAddr) is set.
type Metrics = obs.Metrics

// BatchRecord is one batch's lifecycle in the flight recorder: sequence
// number, sizes, abort count and nanosecond stage timestamps relative to
// engine start.
type BatchRecord = obs.BatchRecord

// Stage identifies one pipeline stage in Metrics.Stages.
type Stage = obs.Stage

// The pipeline stages instrumented by the flight recorder.
const (
	StageSeqWait     = obs.StageSeqWait     // submission → sequenced
	StageLogAppend   = obs.StageLogAppend   // sequenced → command log appended
	StageCC          = obs.StageCC          // concurrency control phase
	StageBarrier     = obs.StageBarrier     // spread between first and last CC worker
	StageExec        = obs.StageExec        // execution phase
	StageDurableWait = obs.StageDurableWait // log append → durable (fsync covered)
	StageSubmit      = obs.StageSubmit      // per-txn ExecuteBatch latency
	StageRORead      = obs.StageRORead      // fast-path read-only latency
)

// StageName returns a stage's snake_case name as used in /metrics labels.
func StageName(s Stage) string { return obs.StageName(s) }

// Value helpers re-exported for transaction bodies.

// U64 decodes the uint64 counter at the front of a record value.
func U64(v []byte) uint64 { return txn.U64(v) }

// PutU64 encodes x into the first eight bytes of v.
func PutU64(v []byte, x uint64) { txn.PutU64(v, x) }

// NewValue allocates a record value of the given size holding counter x.
func NewValue(size int, x uint64) []byte { return txn.NewValue(size, x) }

// Incremented returns a fresh copy of v with its counter incremented.
func Incremented(v []byte, delta uint64) []byte { return txn.Incremented(v, delta) }

// IncrementedInto is the allocation-free Incremented: the incremented
// copy of v lands in dst (grown only when too small) and the slice
// holding it is returned. The engine copies values at install, so a
// transaction reusing one scratch buffer per written key runs at zero
// allocations in steady state.
func IncrementedInto(dst, v []byte, delta uint64) []byte {
	return txn.IncrementedInto(dst, v, delta)
}
