package bohm_test

import (
	"errors"
	"testing"

	"bohm"
)

// TestRangeScanPublicAPI: declared range scans work through the public
// facade on every engine.
func TestRangeScanPublicAPI(t *testing.T) {
	for name, e := range newEngines(t) {
		for i := uint64(0); i < 10; i++ {
			if err := e.Load(bohm.Key{Table: 0, ID: i * 2}, bohm.NewValue(8, i)); err != nil {
				t.Fatal(err)
			}
		}
		r := bohm.KeyRange{Table: 0, Lo: 4, Hi: 13}
		var rows int
		var sum uint64
		res := e.ExecuteBatch([]bohm.Txn{&bohm.Proc{
			Ranges: []bohm.KeyRange{r},
			Body: func(ctx bohm.Ctx) error {
				rows, sum = 0, 0
				return ctx.ReadRange(r, func(k bohm.Key, v []byte) error {
					rows++
					sum += bohm.U64(v)
					return nil
				})
			},
		}})
		if res[0] != nil {
			t.Fatalf("%s: %v", name, res[0])
		}
		// Keys 4, 6, 8, 10, 12 hold counters 2..6.
		if rows != 5 || sum != 2+3+4+5+6 {
			t.Errorf("%s: scan = %d rows sum %d, want 5 rows sum 20", name, rows, sum)
		}
	}
}

// TestDuplicateWriteKeyExported: the sentinel matches what BOHM reports
// for a write-set repeating a key.
func TestDuplicateWriteKeyExported(t *testing.T) {
	e, err := bohm.New(bohm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	k := bohm.Key{Table: 0, ID: 1}
	res := e.ExecuteBatch([]bohm.Txn{&bohm.Proc{Writes: []bohm.Key{k, k}}})
	if !errors.Is(res[0], bohm.ErrDuplicateWriteKey) {
		t.Fatalf("result = %v, want ErrDuplicateWriteKey", res[0])
	}
}
