// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), one testing.B benchmark per figure, plus the ablations
// DESIGN.md calls out and micro-benchmarks of the substrates. Each
// benchmark reports committed-transaction throughput as the custom metric
// "txns/sec" — the unit on the paper's y-axes.
//
// Benchmarks run at a reduced scale so `go test -bench=.` finishes in
// minutes; `go run ./cmd/bohm-bench -scale paper` runs the published
// configuration.
package bohm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"bohm/internal/bench"
	"bohm/internal/core"
	"bohm/internal/engine"
	"bohm/internal/storage"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

const (
	benchRecords    = 8192
	benchRecordSize = 100
	benchThreads    = 4
)

// benchRun drives b.N transactions from gen through a fresh engine of the
// given kind and reports throughput.
func benchRun(b *testing.B, kind bench.EngineKind, loadInto func(engine.Engine) error,
	capacity int, gen func(stream int) func() txn.Txn) {
	b.Helper()
	e, err := bench.MakeEngine(kind, benchThreads, capacity)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if err := loadInto(e); err != nil {
		b.Fatal(err)
	}
	before := e.Stats()
	r := bench.Run(kind, e, bench.Options{
		Txns:       b.N,
		WarmupTxns: -1, // no warmup inside the timed region; b.N iterations dominate
		Procs:      benchThreads,
	}, gen)
	b.ReportMetric(r.Throughput, "txns/sec")
	s := e.Stats().Sub(before)
	if s.CCAborts > 0 {
		b.ReportMetric(float64(s.CCAborts)/float64(b.N), "aborts/txn")
	}
}

func ycsbLoad(y workload.YCSB) func(engine.Engine) error {
	return func(e engine.Engine) error { return y.LoadInto(e) }
}

func ycsbPick(y workload.YCSB, theta float64, pick func(*workload.YCSBSource) txn.Txn) func(int) func() txn.Txn {
	return func(stream int) func() txn.Txn {
		src := y.NewSource(int64(1+stream*31), theta)
		return func() txn.Txn { return pick(src) }
	}
}

// BenchmarkFigure4 reproduces Figure 4: BOHM's concurrency control and
// execution modules, swept independently, on uniform 10RMW transactions
// over 8-byte records.
func BenchmarkFigure4(b *testing.B) {
	y := workload.YCSB{Records: benchRecords, RecordSize: 8}
	for _, cc := range []int{1, 2, 4} {
		for _, ex := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("cc=%d/exec=%d", cc, ex), func(b *testing.B) {
				e, err := bench.MakeBohm(cc, ex, benchRecords)
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				if err := y.LoadInto(e); err != nil {
					b.Fatal(err)
				}
				r := bench.Run(bench.Bohm, e, bench.Options{Txns: b.N, WarmupTxns: -1, Procs: cc + ex},
					ycsbPick(y, 0, func(s *workload.YCSBSource) txn.Txn { return s.RMW10() }))
				b.ReportMetric(r.Throughput, "txns/sec")
			})
		}
	}
}

// benchYCSBFigure runs one YCSB shape at one theta across all engines.
func benchYCSBFigure(b *testing.B, theta float64, pick func(*workload.YCSBSource) txn.Txn) {
	y := workload.YCSB{Records: benchRecords, RecordSize: benchRecordSize}
	for _, kind := range bench.AllEngines {
		b.Run(string(kind), func(b *testing.B) {
			benchRun(b, kind, ycsbLoad(y), benchRecords, ycsbPick(y, theta, pick))
		})
	}
}

// BenchmarkFigure5High reproduces Figure 5 (top): YCSB 10RMW at
// theta 0.9.
func BenchmarkFigure5High(b *testing.B) {
	benchYCSBFigure(b, 0.9, func(s *workload.YCSBSource) txn.Txn { return s.RMW10() })
}

// BenchmarkFigure5Low reproduces Figure 5 (bottom): YCSB 10RMW, uniform.
func BenchmarkFigure5Low(b *testing.B) {
	benchYCSBFigure(b, 0, func(s *workload.YCSBSource) txn.Txn { return s.RMW10() })
}

// BenchmarkFigure6High reproduces Figure 6 (top): YCSB 2RMW-8R at
// theta 0.9.
func BenchmarkFigure6High(b *testing.B) {
	benchYCSBFigure(b, 0.9, func(s *workload.YCSBSource) txn.Txn { return s.RMW2Read8() })
}

// BenchmarkFigure6Low reproduces Figure 6 (bottom): YCSB 2RMW-8R, uniform.
func BenchmarkFigure6Low(b *testing.B) {
	benchYCSBFigure(b, 0, func(s *workload.YCSBSource) txn.Txn { return s.RMW2Read8() })
}

// BenchmarkFigure7 reproduces Figure 7: 2RMW-8R while sweeping theta.
func BenchmarkFigure7(b *testing.B) {
	y := workload.YCSB{Records: benchRecords, RecordSize: benchRecordSize}
	for _, theta := range []float64{0, 0.6, 0.9, 0.99} {
		for _, kind := range bench.AllEngines {
			b.Run(fmt.Sprintf("theta=%.2f/%s", theta, kind), func(b *testing.B) {
				benchRun(b, kind, ycsbLoad(y), benchRecords,
					ycsbPick(y, theta, func(s *workload.YCSBSource) txn.Txn { return s.RMW2Read8() }))
			})
		}
	}
}

// benchScanMix runs the Figure 8/9 mix: uniform 10RMW updates with pct%
// long read-only transactions.
func benchScanMix(b *testing.B, kind bench.EngineKind, pct, scanSize int) {
	y := workload.YCSB{Records: benchRecords, RecordSize: benchRecordSize}
	gen := func(stream int) func() txn.Txn {
		src := y.NewSource(int64(100+stream*17), 0)
		n := 0
		return func() txn.Txn {
			n++
			if pct > 0 && n%(100/pct) == 0 {
				return src.ReadOnly(scanSize)
			}
			return src.RMW10()
		}
	}
	benchRun(b, kind, ycsbLoad(y), benchRecords, gen)
}

// BenchmarkFigure8 reproduces Figure 8: the long read-only transaction
// mix at 0%, 1%, 10% and 100% read-only.
func BenchmarkFigure8(b *testing.B) {
	for _, pct := range []int{0, 1, 10, 100} {
		for _, kind := range bench.AllEngines {
			b.Run(fmt.Sprintf("readonly=%d%%/%s", pct, kind), func(b *testing.B) {
				benchScanMix(b, kind, pct, 1000)
			})
		}
	}
}

// BenchmarkFigure9 reproduces Figure 9 (table): the 1% read-only mix.
func BenchmarkFigure9(b *testing.B) {
	for _, kind := range []bench.EngineKind{bench.Bohm, bench.SI, bench.Hekaton, bench.TwoPL, bench.OCC} {
		b.Run(string(kind), func(b *testing.B) {
			benchScanMix(b, kind, 1, 1000)
		})
	}
}

// benchSmallBank runs the SmallBank mix at the given customer count.
func benchSmallBank(b *testing.B, customers int) {
	sb := workload.SmallBank{Customers: customers}
	for _, kind := range bench.AllEngines {
		b.Run(string(kind), func(b *testing.B) {
			gen := func(stream int) func() txn.Txn {
				src := sb.NewSource(int64(1 + stream*13))
				return func() txn.Txn { return src.Next() }
			}
			benchRun(b, kind, sb.LoadInto, 3*customers+64, gen)
		})
	}
}

// BenchmarkFigure10High reproduces Figure 10 (top): SmallBank with 50
// customers (high contention).
func BenchmarkFigure10High(b *testing.B) { benchSmallBank(b, 50) }

// BenchmarkFigure10Low reproduces Figure 10 (bottom): SmallBank at low
// contention (scaled-down customer count).
func BenchmarkFigure10Low(b *testing.B) { benchSmallBank(b, 20_000) }

// BenchmarkAblationReadRefs compares BOHM's annotated read references
// against raw version-chain traversal (§3.2.3).
func BenchmarkAblationReadRefs(b *testing.B) {
	y := workload.YCSB{Records: benchRecords, RecordSize: benchRecordSize}
	for _, disabled := range []bool{false, true} {
		name := "annotated"
		if disabled {
			name = "traversal"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.CCWorkers, cfg.ExecWorkers = 2, 2
			cfg.Capacity = benchRecords
			cfg.DisableReadRefs = disabled
			e, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if err := y.LoadInto(e); err != nil {
				b.Fatal(err)
			}
			r := bench.Run(bench.Bohm, e, bench.Options{Txns: b.N, WarmupTxns: -1, Procs: benchThreads},
				ycsbPick(y, 0.9, func(s *workload.YCSBSource) txn.Txn { return s.RMW2Read8() }))
			b.ReportMetric(r.Throughput, "txns/sec")
		})
	}
}

// BenchmarkAblationGC compares BOHM with and without incremental garbage
// collection under contended 10RMW churn (§3.3.2).
func BenchmarkAblationGC(b *testing.B) {
	y := workload.YCSB{Records: benchRecords, RecordSize: benchRecordSize}
	for _, gc := range []bool{true, false} {
		name := "on"
		if !gc {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.CCWorkers, cfg.ExecWorkers = 2, 2
			cfg.Capacity = benchRecords
			cfg.GC = gc
			e, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if err := y.LoadInto(e); err != nil {
				b.Fatal(err)
			}
			r := bench.Run(bench.Bohm, e, bench.Options{Txns: b.N, WarmupTxns: -1, Procs: benchThreads},
				ycsbPick(y, 0.9, func(s *workload.YCSBSource) txn.Txn { return s.RMW10() }))
			b.ReportMetric(r.Throughput, "txns/sec")
		})
	}
}

// BenchmarkAblationBatchSize sweeps the coordination batch size; size 1
// degenerates to the per-transaction barrier §3.2.4 rejects.
func BenchmarkAblationBatchSize(b *testing.B) {
	y := workload.YCSB{Records: benchRecords, RecordSize: benchRecordSize}
	for _, bs := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.CCWorkers, cfg.ExecWorkers = 2, 2
			cfg.Capacity = benchRecords
			cfg.BatchSize = bs
			e, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if err := y.LoadInto(e); err != nil {
				b.Fatal(err)
			}
			r := bench.Run(bench.Bohm, e, bench.Options{Txns: b.N, WarmupTxns: -1, Procs: benchThreads},
				ycsbPick(y, 0, func(s *workload.YCSBSource) txn.Txn { return s.RMW10() }))
			b.ReportMetric(r.Throughput, "txns/sec")
		})
	}
}

// BenchmarkAblationPreprocess compares the base CC design against the
// §3.2.2 pre-processing layer.
func BenchmarkAblationPreprocess(b *testing.B) {
	y := workload.YCSB{Records: benchRecords, RecordSize: benchRecordSize}
	for _, pp := range []bool{false, true} {
		name := "scan-all"
		if pp {
			name = "preprocessed"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.CCWorkers, cfg.ExecWorkers = 2, 2
			cfg.Capacity = benchRecords
			cfg.Preprocess = pp
			cfg.PreprocessWorkers = 2
			e, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if err := y.LoadInto(e); err != nil {
				b.Fatal(err)
			}
			r := bench.Run(bench.Bohm, e, bench.Options{Txns: b.N, WarmupTxns: -1, Procs: benchThreads},
				ycsbPick(y, 0, func(s *workload.YCSBSource) txn.Txn { return s.RMW10() }))
			b.ReportMetric(r.Throughput, "txns/sec")
		})
	}
}

// BenchmarkAblationTimestampCounter demonstrates §2.1 in isolation: the
// cost of drawing timestamps from a contended global counter (Hekaton/SI)
// versus a single sequencer thread's uncontended increments (BOHM).
func BenchmarkAblationTimestampCounter(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shared-counter/workers=%d", workers), func(b *testing.B) {
			old := runtime.GOMAXPROCS(workers)
			defer runtime.GOMAXPROCS(old)
			var counter atomic.Uint64
			var wg sync.WaitGroup
			per := b.N / workers
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						counter.Add(1)
					}
				}()
			}
			wg.Wait()
		})
	}
	b.Run("sequencer-thread", func(b *testing.B) {
		var ts uint64
		for i := 0; i < b.N; i++ {
			ts++
		}
		if ts == 0 {
			b.Fatal("unreachable")
		}
	})
}

// benchAllocPointWrite drives pre-built single-key write transactions
// (bench.PointWriteWindows — the same driver the mem experiment measures
// with) through a BOHM engine in fixed-size chunks and reports allocs/op
// and B/op — the steady-state allocation cost of the transaction hot path
// (sequencer, CC placeholder insertion, execution, GC). Run with
// -benchmem; CI holds the pooled path to a committed allocs/op budget.
// driveAllocBench loads the YCSB table into a fresh engine built from
// cfg, warms the pipeline (and any arenas) with one full pass of the
// pre-built windows outside the measured region, then drives b.N
// transactions through them. All three CI-gated allocation benchmarks
// share this protocol so their allocs/op figures stay comparable.
func driveAllocBench(b *testing.B, cfg core.Config, chunks [][]txn.Txn) {
	b.Helper()
	e, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if err := (workload.YCSB{Records: benchRecords, RecordSize: benchRecordSize}).LoadInto(e); err != nil {
		b.Fatal(err)
	}
	for _, c := range chunks {
		e.ExecuteBatch(c)
	}
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		for _, c := range chunks {
			e.ExecuteBatch(c)
			done += len(c)
			if done >= b.N {
				break
			}
		}
	}
}

func benchAllocPointWrite(b *testing.B, disablePooling, metrics bool) {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.CCWorkers, cfg.ExecWorkers = 2, 2
	cfg.Capacity = benchRecords
	cfg.DisablePooling = disablePooling
	cfg.Metrics = metrics
	driveAllocBench(b, cfg, bench.PointWriteWindows(benchRecords, benchRecordSize, 4096, 256))
}

// BenchmarkAllocYCSBPointWrite is the allocation budget benchmark CI
// enforces: allocs/op on the pooled YCSB point-write path must stay at or
// below ci/alloc-budget.txt.
func BenchmarkAllocYCSBPointWrite(b *testing.B) { benchAllocPointWrite(b, false, false) }

// BenchmarkAllocYCSBPointWriteNoPool is the ablation: the same path with
// Config.DisablePooling, i.e. the pre-arena allocation profile.
func BenchmarkAllocYCSBPointWriteNoPool(b *testing.B) { benchAllocPointWrite(b, true, false) }

// BenchmarkAllocYCSBPointWriteMetrics is the pooled point-write path with
// Config.Metrics enabled. CI holds it to the same allocs/op budget as the
// plain path: the observability subsystem's histograms and flight
// recorder are fixed preallocated arrays, so turning them on must add
// zero allocations per transaction.
func BenchmarkAllocYCSBPointWriteMetrics(b *testing.B) { benchAllocPointWrite(b, false, true) }

// BenchmarkAllocYCSBPointWriteKernels is the pooled point-write path with
// the full CC-kernel machinery engaged: preprocessing on (so the counted-
// then-bucketed plan slabs are built every batch) plus the per-worker
// hot-key memo and hashed probes. CI holds it to the same allocs/op
// budget as the plain path: the plan slabs, scratch and memo are batch-
// or worker-owned arrays that recycle with the batch, so the kernels
// must add zero allocations per transaction.
func BenchmarkAllocYCSBPointWriteKernels(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.CCWorkers, cfg.ExecWorkers = 2, 2
	cfg.Capacity = benchRecords
	cfg.Preprocess = true
	cfg.PreprocessWorkers = 2
	driveAllocBench(b, cfg, bench.PointWriteWindows(benchRecords, benchRecordSize, 4096, 256))
}

// BenchmarkAllocYCSBPointWriteArena is the end-to-end zero-allocation
// benchmark CI enforces at 0 allocs/op: single-key read-modify-writes
// whose values are produced fresh every execution, staged in each
// instance's reused scratch buffer (the caller-buffer-reuse contract the
// payload arena's copy-at-install licenses), and installed into
// epoch-recycled value slabs. Unlike the blind-write benchmarks above —
// which resubmit one shared value and so never exercise value production
// — zero here means the whole loop allocates nothing in steady state:
// value production, sequencing, CC, execution, payload install and GC.
func BenchmarkAllocYCSBPointWriteArena(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.CCWorkers, cfg.ExecWorkers = 2, 2
	cfg.Capacity = benchRecords
	driveAllocBench(b, cfg, bench.RMWWindows(benchRecords, benchRecordSize, 4096, 256))
}

// BenchmarkAllocYCSBPointWriteDurable is the durability-on allocation
// budget benchmark CI enforces: the same pooled point-write path with
// command logging enabled (sync policy "never", so the numbers measure
// the logging path's allocations, not fsync latency). The encode buffers
// — the engine's wal record and the writer's frame scratch — are reused
// across appends, so logging adds no per-transaction allocations.
func BenchmarkAllocYCSBPointWriteDurable(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.CCWorkers, cfg.ExecWorkers = 2, 2
	cfg.Capacity = benchRecords
	cfg.LogDir = b.TempDir()
	cfg.SyncPolicy = SyncNever
	reg := NewRegistry()
	workload.RegisterYCSB(reg, benchRecordSize)
	driveAllocBench(b, cfg, bench.PointWriteCallWindows(reg, benchRecords, 4096, 256))
}

// benchAllocFastRead measures allocs/op on the single-key read-only path:
// pre-built point-read transactions resubmitted in fixed windows, so the
// numbers isolate the engine's read machinery. With the fast path (the
// default) the target CI enforces is zero allocations per read; the
// NoFast ablation shows what the full pipeline pays for the same reads.
func benchAllocFastRead(b *testing.B, disableFastPath bool) {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.CCWorkers, cfg.ExecWorkers = 2, 2
	cfg.Capacity = benchRecords
	cfg.DisableReadOnlyFastPath = disableFastPath
	driveAllocBench(b, cfg, bench.PointReadWindows(benchRecords, 4096, 256))
}

// BenchmarkAllocYCSBFastRead is the fast-path read allocation benchmark
// CI enforces at a budget of zero allocations per read.
func BenchmarkAllocYCSBFastRead(b *testing.B) { benchAllocFastRead(b, false) }

// BenchmarkAllocYCSBFastReadNoFast is the ablation: the same reads
// through the full pipeline.
func BenchmarkAllocYCSBFastReadNoFast(b *testing.B) { benchAllocFastRead(b, true) }

// benchAllocChurnScan measures allocs/op on the fast-path range-scan path
// over a churned table: half the keys are deleted and (with reaping on)
// fully reclaimed before the measured region, so the numbers cover the
// scan engine — resumable directory iterators, loser-tree merge, snapshot
// resolution — on the index shape the lifecycle is meant to maintain.
func benchAllocChurnScan(b *testing.B, disableReaping bool) {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.CCWorkers, cfg.ExecWorkers = 2, 2
	cfg.Capacity = benchRecords
	cfg.DisableReaping = disableReaping
	e, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	c := workload.Churn{Records: benchRecords, RecordSize: benchRecordSize}
	if err := c.LoadInto(e); err != nil {
		b.Fatal(err)
	}
	// Kill half the keys, then tick enough single-transaction batches for
	// the reap sweep to cover the whole directory.
	var dels []txn.Txn
	for id := 0; id < benchRecords; id++ {
		if id%2 == 0 {
			dels = append(dels, &workload.DeleteTxn{K: txn.Key{Table: workload.ChurnTable, ID: uint64(id)}})
		}
	}
	for i := 0; i < len(dels); i += 1024 {
		end := i + 1024
		if end > len(dels) {
			end = len(dels)
		}
		e.ExecuteBatch(dels[i:end])
	}
	settle := workload.PutTxn{Keys: []txn.Key{{Table: workload.ChurnTable, ID: 1}}, Val: txn.NewValue(benchRecordSize, 1)}
	for i := 0; i < benchRecords/128+64; i++ {
		e.ExecuteBatch([]txn.Txn{&settle})
	}

	chunks := bench.ChurnScanWindows(benchRecords, 64, 1024, 256)
	for _, ch := range chunks {
		e.ExecuteBatch(ch)
	}
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		for _, ch := range chunks {
			e.ExecuteBatch(ch)
			done += len(ch)
			if done >= b.N {
				break
			}
		}
	}
}

// BenchmarkAllocChurnScan is the scan-path allocation budget benchmark CI
// enforces at zero allocations per scan (pooled scans over a reaped
// table).
func BenchmarkAllocChurnScan(b *testing.B) { benchAllocChurnScan(b, false) }

// BenchmarkAllocChurnScanNoReap is the ablation: the same scans over the
// insert-only index, paying for every dead entry.
func BenchmarkAllocChurnScanNoReap(b *testing.B) { benchAllocChurnScan(b, true) }

// BenchmarkZipfian measures the key generator.
func BenchmarkZipfian(b *testing.B) {
	for _, theta := range []float64{0, 0.9} {
		b.Run(fmt.Sprintf("theta=%.1f", theta), func(b *testing.B) {
			src := workload.YCSB{Records: benchRecords, RecordSize: 8}.NewSource(1, theta)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = src.RMW10()
			}
		})
	}
}

// BenchmarkHashTable measures the latch-free index.
func BenchmarkHashTable(b *testing.B) {
	m := storage.NewMap[int](1 << 16)
	for i := 0; i < 1<<15; i++ {
		v := i
		if _, _, err := m.Insert(txn.Key{ID: uint64(i)}, &v); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if m.Get(txn.Key{ID: uint64(i) & (1<<15 - 1)}) == nil {
				b.Fatal("missing")
			}
		}
	})
}

// BenchmarkVersionChain measures visibility search over version chains.
func BenchmarkVersionChain(b *testing.B) {
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			c := storage.NewChain(storage.NewLoadedVersion([]byte{1}))
			for i := 1; i <= depth; i++ {
				v := storage.NewPlaceholder(uint64(i*10), uint64(i), nil)
				v.Install([]byte{byte(i)}, false)
				c.Push(v)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.VisibleAt(5) == nil { // deepest version
					b.Fatal("not found")
				}
			}
		})
	}
}
